"""WorkerPool basics: dispatch, telemetry, and crash fallback."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.parallel import BlobMap, MirrorDevice, PoolFaultPlan, ShmBlob, WorkerPool


def _double(x):
    return x * 2


def _boom(_x):
    raise ValueError("task error")


def test_run_preserves_order(pool):
    assert pool.run(_double, list(range(7))) == [0, 2, 4, 6, 8, 10, 12]


def test_submit_resolves_future(pool):
    assert pool.submit(_double, 21).result(timeout=30) == 42


def test_task_exception_propagates(pool):
    with pytest.raises(ValueError, match="task error"):
        pool.submit(_boom, 1).result(timeout=30)


def test_stats_shape(pool):
    pool.run(_double, [1, 2, 3])
    s = pool.stats()
    assert s["configured_workers"] >= 1  # sized by REPRO_POOL_WORKERS in CI
    assert s["tasks"] >= 3
    assert s["batches"] >= 1
    assert s["busy_workers"] == 0  # idle between calls
    assert s["shm_bytes"] == 0


def test_worker_crash_falls_back_in_process():
    """A dying worker must not change answers: the lost task re-runs
    in-process and the failure is counted."""
    reg = MetricsRegistry("crash")
    with WorkerPool(workers=2, metrics=reg, fault_plan=PoolFaultPlan(kill_task=1)) as p:
        assert p.run(_double, [10, 20, 30]) == [20, 40, 60]
        assert p.stats()["worker_failures"] >= 1
        # The pool respawned: later batches run normally.
        assert p.run(_double, [4]) == [8]


def test_submit_crash_falls_back_in_process():
    reg = MetricsRegistry("crash-submit")
    with WorkerPool(workers=1, metrics=reg, fault_plan=PoolFaultPlan(kill_task=0)) as p:
        assert p.submit(_double, 5).result(timeout=60) == 10
        assert p.stats()["worker_failures"] >= 1


def test_shm_blob_roundtrip_shared_and_inline():
    big = np.arange(200_000, dtype=np.uint64)
    blob = ShmBlob.pack([big])
    assert blob.shared  # above the segment threshold
    got = np.frombuffer(blob.view(), dtype=np.uint64)
    assert np.array_equal(got, big)
    del got
    blob.release(unlink=True)

    small = ShmBlob.pack([b"abc", b"def"])
    assert not small.shared
    assert bytes(small.view()) == b"abcdef"
    small.release(unlink=True)  # no-op for inline blobs


def test_blobmap_named_payloads():
    m = BlobMap.pack({"a": b"xyz", "b": np.arange(4, dtype=np.uint8)})
    assert m.names() == ["a", "b"]
    assert bytes(m.get("a")) == b"xyz"
    assert bytes(m.get("b")) == bytes(range(4))
    m.release(unlink=True)


def test_mirror_device_snapshot_and_base():
    dev = MirrorDevice()
    dev.map_extent("part.000.r0", memoryview(b"sealed-bytes"))
    assert dev.exists("part.000.r0")
    assert dev.file_size("part.000.r0") == len(b"sealed-bytes")
    with dev.open("part.000.r0") as f:
        assert f.read(0, 6) == b"sealed"
    with pytest.raises(ValueError):
        dev._append("part.000.r0", b"nope")  # snapshots are read-only

    dev.set_base("vlog.r0", 100)
    with dev.open("vlog.r0", create=False) as f:
        off = f.append(b"tail")
    assert off == 100  # offsets continue past the parent's bytes
    assert dev.file_size("vlog.r0") == 104
    assert dev.local_extents()["vlog.r0"] == b"tail"  # only the tail ships back
