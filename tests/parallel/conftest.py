"""Shared fixtures for the parallel suite.

Spawning workers costs ~0.5 s each, so one warmed session-scoped pool is
shared by every equivalence test; tests that poison their pool (crash
injection) build their own.

``REPRO_POOL_WORKERS`` overrides the shared pool's size (CI sweeps 1, 2,
and all-cores — equivalence must hold at every width); ``0`` means
`default_workers()`.
"""

import os

import pytest

from repro.obs import MetricsRegistry
from repro.parallel import WorkerPool
from repro.parallel.pool import default_workers


@pytest.fixture(scope="session")
def pool():
    workers = int(os.environ.get("REPRO_POOL_WORKERS", "2")) or default_workers()
    with WorkerPool(workers=workers, metrics=MetricsRegistry("pool")) as p:
        p.warm()
        yield p
