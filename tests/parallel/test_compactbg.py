"""Background compaction produces exactly what foreground `compact` does:
same report, byte-identical dataset, same counters and registry sums."""

import asyncio

import numpy as np
import pytest

from repro.core.formats import FORMATS
from repro.core.kv import random_kv_batch
from repro.core.multiepoch import MultiEpochStore
from repro.obs import MetricsRegistry
from repro.parallel.compactbg import compact_in_background
from repro.storage.blockio import StorageDevice

NRANKS = 4


def _build_store(fmt, reg):
    store = MultiEpochStore(
        nranks=NRANKS,
        fmt=FORMATS[fmt],
        value_bytes=24,
        device=StorageDevice(metrics=reg),
        seed=7,
    )
    rng = np.random.default_rng(42)
    for _ in range(3):
        store.write_epoch([random_kv_batch(200, 24, rng) for _ in range(NRANKS)])
    return store


def _series_map(reg):
    out = {}
    for name, labels, inst in reg.series():
        v = getattr(inst, "value", None)
        if v is None:
            v = (inst.count, inst.total)
        if v not in (0, 0.0, (0, 0.0)):
            out[(name, labels)] = v
    return out


def _report_tuple(r):
    return (
        r.merged_epoch,
        r.source_epochs,
        r.records_in,
        r.records_out,
        r.bytes_written,
        r.bytes_reclaimed,
        r.extents_removed,
        r.generation,
    )


@pytest.mark.parametrize("fmt", ["base", "dataptr", "filterkv"])
def test_background_compaction_matches_foreground(fmt, pool):
    reg_a, reg_b = MetricsRegistry("a"), MetricsRegistry("b")
    A = _build_store(fmt, reg_a)
    B = _build_store(fmt, reg_b)

    ra = A.compact()
    rb = asyncio.run(compact_in_background(B, pool))
    assert ra is not None and rb is not None
    assert _report_tuple(ra) == _report_tuple(rb)

    fa, fb = A.device.list_files(), B.device.list_files()
    assert fa == fb
    for name in fa:
        assert (
            A.device._require(name).getvalue() == B.device._require(name).getvalue()
        ), f"{fmt}: extent {name} differs"

    ca, cb = A.device.counters, B.device.counters
    assert (ca.reads, ca.writes, ca.bytes_read, ca.bytes_written) == (
        cb.reads,
        cb.writes,
        cb.bytes_read,
        cb.bytes_written,
    )
    assert _series_map(reg_a) == _series_map(reg_b)

    keys = np.random.default_rng(1).integers(0, 2**63, 150, dtype=np.uint64)
    va, _ = A.engine(A.epochs[-1]).get_many(keys)
    vb, _ = B.engine(B.epochs[-1]).get_many(keys)
    assert va == vb
    A.close()
    B.close()


def test_background_compaction_nothing_to_do(pool):
    store = MultiEpochStore(nranks=2, fmt=FORMATS["base"], value_bytes=24, seed=3)
    store.write_epoch([random_kv_batch(50, 24, np.random.default_rng(3)) for _ in range(2)])
    assert asyncio.run(compact_in_background(store, pool)) is None
    store.close()


def test_background_compaction_rejects_concurrent_mutation(pool):
    """If the store changes shape while the merge is out, publishing the
    stale merge would corrupt the manifest — it must refuse instead."""
    store = _build_store("base", MetricsRegistry("m"))
    rng = np.random.default_rng(9)

    async def run():
        task = asyncio.get_running_loop().create_task(
            compact_in_background(store, pool)
        )
        await asyncio.sleep(0)  # let prepare pin the manifest copy
        store.write_epoch([random_kv_batch(50, 24, rng) for _ in range(NRANKS)])
        return await task

    with pytest.raises(RuntimeError, match="changed shape"):
        asyncio.run(run())
    # The refused merge left the live view untouched and serving.
    assert len(store.epochs) == 4
    store.close()
