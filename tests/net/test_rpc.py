"""Tests for the RPC latency model against the paper's Fig. 1 anchors."""

import pytest

from repro.net.cpu import CPUS, TRANSPORTS, rpc_cpu_time
from repro.net.rpc import measure_rpc_latency


def test_knl_about_4x_haswell_polling():
    """Fig. 1a: KNL RPC latency ≈ 4× Haswell for small messages."""
    h = measure_rpc_latency("haswell", "gni", 8, "polling")
    k = measure_rpc_latency("trinity-knl", "gni", 8, "polling")
    assert 3.0 < k.mean_us / h.mean_us < 5.0


def test_blocking_worse_than_polling_and_gap_wider_on_knl():
    """Fig. 1c: blocking mode amplifies the KNL penalty (context switches)."""
    for cpu in ("haswell", "trinity-knl"):
        p = measure_rpc_latency(cpu, "gni", 8, "polling")
        b = measure_rpc_latency(cpu, "gni", 8, "blocking")
        assert b.mean_us > p.mean_us
    extra_h = (
        measure_rpc_latency("haswell", "gni", 8, "blocking").mean_us
        - measure_rpc_latency("haswell", "gni", 8, "polling").mean_us
    )
    extra_k = (
        measure_rpc_latency("trinity-knl", "gni", 8, "blocking").mean_us
        - measure_rpc_latency("trinity-knl", "gni", 8, "polling").mean_us
    )
    assert extra_k > 3 * extra_h


def test_latency_monotone_in_message_size():
    sizes = [8, 256, 1024, 4096, 16384, 65536]
    lats = [measure_rpc_latency("haswell", "gni", s).mean_us for s in sizes]
    assert all(a <= b for a, b in zip(lats, lats[1:]))


def test_bulk_transfer_step_past_eager_limit():
    """GNI payloads beyond 16 KB need a rendezvous round trip (§II)."""
    eager = measure_rpc_latency("haswell", "gni", 16384).mean_us
    bulk = measure_rpc_latency("haswell", "gni", 16385).mean_us
    assert bulk > eager + 2 * TRANSPORTS["gni"].wire_latency_us * 0.9


def test_theta_slightly_slower_than_trinity_knl():
    t = measure_rpc_latency("theta-knl", "gni", 8)
    k = measure_rpc_latency("trinity-knl", "gni", 8)
    assert t.mean_us > k.mean_us


def test_tcp_slower_than_gni():
    tcp = measure_rpc_latency("haswell", "tcp", 8)
    gni = measure_rpc_latency("haswell", "gni", 8)
    assert tcp.mean_us > 1.5 * gni.mean_us


def test_result_metadata():
    r = measure_rpc_latency("haswell", "gni", 64, "polling", nmessages=10)
    assert r.nmessages == 10
    assert r.cpu == "haswell" and r.transport == "gni"
    assert r.msg_bytes == 64 and r.mode == "polling"


def test_invalid_mode_rejected():
    from repro.net.des import Simulator
    from repro.net.rpc import RpcEndpoint

    with pytest.raises(ValueError):
        RpcEndpoint(Simulator(), CPUS["haswell"], TRANSPORTS["gni"], "spinning")


def test_rpc_cpu_time_scales_with_slowdown():
    h = rpc_cpu_time(CPUS["haswell"], TRANSPORTS["gni"], 1024, False)
    k = rpc_cpu_time(CPUS["trinity-knl"], TRANSPORTS["gni"], 1024, False)
    assert k == pytest.approx(4.0 * h)


def test_rpc_cpu_time_blocking_adds_switches():
    cpu, tr = CPUS["haswell"], TRANSPORTS["gni"]
    extra = rpc_cpu_time(cpu, tr, 64, True) - rpc_cpu_time(cpu, tr, 64, False)
    assert extra == pytest.approx(2 * cpu.context_switch_us * 1e-6)
