"""Tests for the all-to-all flow model against the paper's Fig. 1d anchors."""

import pytest

from repro.net.flowmodel import pernode_alltoall_bandwidth, transfer_time
from repro.net.topology import ARIES_DRAGONFLY


def bw(cpu, ppn, msg=16384, nnodes=32):
    return pernode_alltoall_bandwidth(cpu, "gni", ARIES_DRAGONFLY, nnodes, ppn, msg)


def test_bandwidth_rises_with_ppn_then_plateaus():
    """Fig. 1d structure: CPU-bound at low PPN, plateau at high PPN."""
    series = [bw("haswell", p).bandwidth for p in (1, 4, 8, 16, 32, 64)]
    assert all(a <= b or abs(a - b) < 1e-6 for a, b in zip(series, series[1:]))
    assert series[-1] == series[-2]  # plateau reached


def test_haswell_ppn1_near_paper_value():
    """Fig. 1d: Haswell at PPN=1, 16 KB messages ≈ 200 MB/s."""
    b = bw("haswell", 1).bandwidth
    assert 120e6 < b < 320e6


def test_knl_plateau_about_3x_below_haswell():
    """Fig. 1d: per-node KNL bandwidth ≈ 3× lower despite 2× the cores."""
    h = bw("haswell", 64).bandwidth
    k = bw("trinity-knl", 64).bandwidth
    assert 2.3 < h / k < 5.0


def test_knl_ppn1_about_4x_below_haswell():
    h = bw("haswell", 1).bandwidth
    k = bw("trinity-knl", 1).bandwidth
    assert 3.0 < h / k < 5.0


def test_bottleneck_labels():
    assert bw("haswell", 1).bottleneck == "cpu"
    assert bw("haswell", 64).bottleneck in ("progress", "wire")


def test_ppn_capped_at_core_count():
    a = bw("narwhal", 4).cpu_limit
    b = bw("narwhal", 16).cpu_limit  # narwhal has 4 cores
    assert a == b


def test_blocking_reduces_cpu_limit():
    p = pernode_alltoall_bandwidth("haswell", "gni", ARIES_DRAGONFLY, 32, 4, 16384, False)
    b = pernode_alltoall_bandwidth("haswell", "gni", ARIES_DRAGONFLY, 32, 4, 16384, True)
    assert b.cpu_limit < p.cpu_limit


def test_invalid_args():
    with pytest.raises(ValueError):
        pernode_alltoall_bandwidth("haswell", "gni", ARIES_DRAGONFLY, 0, 1, 64)
    with pytest.raises(ValueError):
        pernode_alltoall_bandwidth("haswell", "gni", ARIES_DRAGONFLY, 1, 0, 64)
    with pytest.raises(ValueError):
        pernode_alltoall_bandwidth("haswell", "gni", ARIES_DRAGONFLY, 1, 1, 0)
    with pytest.raises(ValueError):
        transfer_time(100, 0)


def test_transfer_time():
    assert transfer_time(1e9, 1e8) == pytest.approx(10.0)
