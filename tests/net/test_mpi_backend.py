"""Tests for the MPI transport shim (loopback path; MPI path needs a
runtime and is exercised by examples/mpi_partition.py under mpiexec)."""

import numpy as np
import pytest

from repro.core.pipeline import Envelope
from repro.net.mpi_backend import (
    HAVE_MPI,
    LoopbackTransport,
    make_transport,
    pack_envelope,
    unpack_envelope,
)


def test_envelope_pack_roundtrip():
    env = Envelope(src=3, dest=7, payload=b"\x01\x02\x03payload", nrecords=2)
    blob = pack_envelope(env)
    out = unpack_envelope(blob)
    assert out == env


def test_unpack_rejects_short_blob():
    with pytest.raises(ValueError):
        unpack_envelope(b"\x00\x01")


def test_loopback_routes_to_destination():
    t = LoopbackTransport(4)
    t.send(Envelope(0, 2, b"a", 1))
    t.send(Envelope(1, 2, b"b", 1))
    t.send(Envelope(3, 0, b"c", 1))
    assert t.pending == 3
    got2 = t.poll(2)
    assert [e.payload for e in got2] == [b"a", b"b"]
    assert [e.src for e in got2] == [0, 1]
    assert t.poll(2) == []  # drained
    assert t.poll(0)[0].payload == b"c"
    assert t.sent == 3 and t.received == 3


def test_loopback_validates():
    t = LoopbackTransport(2)
    with pytest.raises(ValueError):
        t.send(Envelope(0, 5, b"", 0))
    with pytest.raises(ValueError):
        LoopbackTransport(0)


def test_make_transport_falls_back_without_mpi():
    t = make_transport(6)
    if not HAVE_MPI:
        assert isinstance(t, LoopbackTransport)
        assert t.size == 6


def test_loopback_full_shuffle_roundtrip():
    """Drive real pipelines over the transport, both phases."""
    from repro.core.formats import FMT_FILTERKV
    from repro.core.kv import random_kv_batch
    from repro.core.partitioning import HashPartitioner
    from repro.core.pipeline import ReceiverState, WriterState
    from repro.storage.blockio import StorageDevice

    nranks, records = 4, 800
    t = LoopbackTransport(nranks)
    receivers = []
    for rank in range(nranks):
        dev = StorageDevice()
        receivers.append(
            ReceiverState(rank, nranks, FMT_FILTERKV, dev, 8, capacity_hint=records * 2)
        )
        w = WriterState(rank, FMT_FILTERKV, HashPartitioner(nranks), dev, 8, send=t.send)
        w.put_batch(random_kv_batch(records, 8, rng=rank))
        w.finish()
    total = 0
    for rank in range(nranks):
        for env in t.poll(rank):
            receivers[rank].deliver(env)
        receivers[rank].finish()
        total += receivers[rank].records_received
    assert total == nranks * records
    # Spot-check a mapping: rank 2's first key is findable in its owner's aux.
    batch = random_kv_batch(records, 8, rng=2)
    key = int(batch.keys[0])
    owner = HashPartitioner(nranks).partition_of_one(key)
    assert 2 in receivers[owner].aux.candidate_ranks(key)
