"""Tests for topology all-to-all efficiency models."""

from repro.net.topology import (
    ARIES_DRAGONFLY,
    NARWHAL_FATTREE,
    DragonflyTopology,
    FatTreeTopology,
)


def test_single_node_is_free():
    assert NARWHAL_FATTREE.alltoall_efficiency(1) == 1.0
    assert ARIES_DRAGONFLY.alltoall_efficiency(1) == 1.0


def test_fattree_efficiency_decreases_with_scale():
    effs = [NARWHAL_FATTREE.alltoall_efficiency(n) for n in (2, 16, 64, 160, 640)]
    assert all(a >= b for a, b in zip(effs, effs[1:]))
    assert effs[-1] < effs[0]


def test_fattree_within_edge_switch_is_cheap():
    # A job inside one edge switch suffers no oversubscription.
    eff = NARWHAL_FATTREE.alltoall_efficiency(NARWHAL_FATTREE.nodes_per_edge)
    assert eff > 0.8


def test_fattree_large_scale_penalty_is_severe():
    """Fig. 8's base-format curve needs large jobs to see only a small
    fraction of NIC bandwidth for shuffle."""
    eff = NARWHAL_FATTREE.alltoall_efficiency(160)
    assert eff < 0.25


def test_dragonfly_stays_efficient():
    effs = [ARIES_DRAGONFLY.alltoall_efficiency(n) for n in (4, 32, 128, 1024)]
    assert all(e > 0.6 for e in effs)
    assert all(a >= b for a, b in zip(effs, effs[1:]))


def test_dragonfly_floor():
    t = DragonflyTopology(base_efficiency=0.9, taper_alpha=10.0)
    assert t.alltoall_efficiency(1 << 20) == 0.1


def test_custom_fattree_oversub_one_is_lossless_except_incast():
    t = FatTreeTopology(access_oversub=1.0, dist_oversub=1.0, incast_alpha=0.0)
    assert t.alltoall_efficiency(1000) == 1.0
