"""Tests for DES shuffle collectives."""

import numpy as np
import pytest

from repro.net.collectives import alltoallv
from repro.net.flowmodel import pernode_alltoall_bandwidth
from repro.net.topology import DragonflyTopology


def _uniform(nprocs, per_pair):
    m = np.full((nprocs, nprocs), per_pair, dtype=np.int64)
    np.fill_diagonal(m, 0)
    return m


def test_uniform_exchange_matches_flowmodel():
    nprocs, per_pair, msg = 4, 30, 16384
    res = alltoallv(_uniform(nprocs, per_pair), msg, cpu="haswell")
    topo = DragonflyTopology(base_efficiency=1.0, taper_alpha=0.0)
    model = pernode_alltoall_bandwidth("haswell", "gni", topo, nprocs, 1, msg)
    assert res.pernode_bandwidth == pytest.approx(model.cpu_limit, rel=0.15)


def test_knl_4x_slower():
    m = _uniform(4, 20)
    h = alltoallv(m, 16384, cpu="haswell").elapsed
    k = alltoallv(m, 16384, cpu="trinity-knl").elapsed
    assert k / h == pytest.approx(4.0, rel=0.05)


def test_message_and_byte_accounting():
    m = np.asarray([[0, 2, 1], [3, 5, 0], [1, 1, 0]])  # diagonal ignored
    res = alltoallv(m, 1000, cpu="haswell")
    assert res.total_messages == 2 + 1 + 3 + 1 + 1
    assert res.total_bytes == 8 * 1000


def test_hot_receiver_skew():
    """All senders target one receiver: its core serializes the exchange."""
    nprocs, per_pair = 6, 10
    skew = np.zeros((nprocs, nprocs), dtype=np.int64)
    skew[:, 0] = per_pair
    skew[0, 0] = 0
    balanced = _uniform(nprocs, 2)
    r_skew = alltoallv(skew, 4096)
    r_bal = alltoallv(balanced, 4096)
    # Normalize by message count: the hot receiver's core serializes the
    # skewed exchange, so each message costs far more wall-clock.
    assert (r_skew.elapsed / r_skew.total_messages) > 2 * (
        r_bal.elapsed / r_bal.total_messages
    )


def test_shared_wire_caps_bandwidth():
    m = _uniform(4, 25)
    fast = alltoallv(m, 16384, wire_bandwidth=None)
    slow = alltoallv(m, 16384, wire_bandwidth=1e6)  # 1 MB/s shared fabric
    assert slow.elapsed > fast.elapsed
    assert slow.total_bytes / slow.elapsed == pytest.approx(1e6, rel=0.15)


def test_blocking_mode_slower():
    m = _uniform(3, 15)
    p = alltoallv(m, 64, blocking=False).elapsed
    b = alltoallv(m, 64, blocking=True).elapsed
    assert b > p


def test_validation():
    with pytest.raises(ValueError):
        alltoallv(np.zeros((2, 3)), 64)
    with pytest.raises(ValueError):
        alltoallv(np.asarray([[0, -1], [0, 0]]), 64)


def test_empty_exchange():
    res = alltoallv(np.zeros((3, 3)), 64)
    assert res.elapsed == 0.0
    assert res.total_messages == 0
    assert res.pernode_bandwidth == 0.0
