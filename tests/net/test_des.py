"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.net.des import Event, Resource, SimulationError, Simulator


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(1.5)
        log.append(sim.now)
        yield sim.timeout(0.5)
        log.append(sim.now)

    sim.spawn(proc())
    end = sim.run()
    assert log == [1.5, 2.0]
    assert end == 2.0


def test_event_wakes_waiters_with_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        v = yield ev
        got.append((sim.now, v))

    def firer():
        yield sim.timeout(3.0)
        ev.succeed("payload")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert got == [(3.0, "payload")]


def test_waiting_on_already_fired_event():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(42)
    results = sim.run_all([iter_wait(ev)])
    assert results == [42]


def iter_wait(ev):
    v = yield ev
    return v


def test_process_join_returns_value():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "done"

    def parent():
        v = yield sim.spawn(child())
        return (sim.now, v)

    assert sim.run_all([parent()]) == [(2.0, "done")]


def test_double_fire_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_bad_yield_type_rejected():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_run_until_stops_early():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(10.0)
        fired.append(sim.now)

    sim.spawn(proc())
    assert sim.run(until=5.0) == 5.0
    assert fired == []
    sim.run()
    assert fired == [10.0]


def test_fifo_ordering_at_same_time():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.spawn(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_resource_serializes_access():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def worker(tag):
        yield res.request()
        start = sim.now
        yield sim.timeout(1.0)
        res.release()
        spans.append((tag, start, sim.now))

    sim.run_all([worker(i) for i in range(3)])
    assert [s[1:] for s in spans] == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]


def test_resource_capacity_two():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def worker(tag):
        yield res.request()
        yield sim.timeout(1.0)
        res.release()
        done.append((tag, sim.now))

    sim.run_all([worker(i) for i in range(4)])
    assert [t for _, t in done] == [1.0, 1.0, 2.0, 2.0]


def test_resource_release_without_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_deadlock_detection():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never fired

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_all([stuck()])
