"""Tests for DES execution tracing."""

import pytest

from repro.net.des import Resource, Simulator
from repro.net.tracing import Span, Tracer


def _traced_workload():
    sim = Simulator()
    tracer = Tracer(sim)
    core = Resource(sim, 1)

    def worker(tag, dt):
        yield core.request()
        with tracer.span("core0", tag):
            yield sim.timeout(dt)
        core.release()

    sim.run_all([worker("send", 2.0), worker("recv", 3.0)])
    return sim, tracer


def test_spans_recorded_with_durations():
    sim, tracer = _traced_workload()
    assert len(tracer.spans) == 2
    assert tracer.busy_time("core0") == pytest.approx(5.0)
    assert sim.now == pytest.approx(5.0)


def test_utilization():
    sim, tracer = _traced_workload()
    assert tracer.utilization("core0") == pytest.approx(1.0)
    assert tracer.utilization("core1") == 0.0
    assert Tracer(Simulator()).utilization("x") == 0.0


def test_by_label():
    _, tracer = _traced_workload()
    labels = tracer.by_label()
    assert labels["send"] == pytest.approx(2.0)
    assert labels["recv"] == pytest.approx(3.0)


def test_idle_time_visible():
    sim = Simulator()
    tracer = Tracer(sim)

    def bursty():
        with tracer.span("nic", "tx"):
            yield sim.timeout(1.0)
        yield sim.timeout(3.0)  # idle gap
        with tracer.span("nic", "tx"):
            yield sim.timeout(1.0)

    sim.run_all([bursty()])
    assert tracer.utilization("nic") == pytest.approx(2.0 / 5.0)


def test_timeline_rendering():
    _, tracer = _traced_workload()
    art = tracer.timeline(width=40)
    assert "core0" in art
    assert "s" in art.splitlines()[-1]
    assert "r" in art and "s" in art  # both span labels appear


def test_empty_timeline():
    assert Tracer(Simulator()).timeline() == "(empty trace)"


def test_invalid_span_rejected():
    sim = Simulator()
    tracer = Tracer(sim)
    with pytest.raises(ValueError):
        tracer.record("x", "bad", start=5.0, end=1.0)


def test_span_dataclass():
    s = Span("r", "l", 1.0, 3.5)
    assert s.duration == 2.5
