"""Tests for DES execution tracing."""

import pytest

from repro.net.des import Resource, Simulator
from repro.net.tracing import Span, Tracer


def _traced_workload():
    sim = Simulator()
    tracer = Tracer(sim)
    core = Resource(sim, 1)

    def worker(tag, dt):
        yield core.request()
        with tracer.span("core0", tag):
            yield sim.timeout(dt)
        core.release()

    sim.run_all([worker("send", 2.0), worker("recv", 3.0)])
    return sim, tracer


def test_spans_recorded_with_durations():
    sim, tracer = _traced_workload()
    assert len(tracer.spans) == 2
    assert tracer.busy_time("core0") == pytest.approx(5.0)
    assert sim.now == pytest.approx(5.0)


def test_utilization():
    sim, tracer = _traced_workload()
    assert tracer.utilization("core0") == pytest.approx(1.0)
    assert tracer.utilization("core1") == 0.0
    assert Tracer(Simulator()).utilization("x") == 0.0


def test_by_label():
    _, tracer = _traced_workload()
    labels = tracer.by_label()
    assert labels["send"] == pytest.approx(2.0)
    assert labels["recv"] == pytest.approx(3.0)


def test_idle_time_visible():
    sim = Simulator()
    tracer = Tracer(sim)

    def bursty():
        with tracer.span("nic", "tx"):
            yield sim.timeout(1.0)
        yield sim.timeout(3.0)  # idle gap
        with tracer.span("nic", "tx"):
            yield sim.timeout(1.0)

    sim.run_all([bursty()])
    assert tracer.utilization("nic") == pytest.approx(2.0 / 5.0)


def test_timeline_rendering():
    _, tracer = _traced_workload()
    art = tracer.timeline(width=40)
    assert "core0" in art
    assert "s" in art.splitlines()[-1]
    assert "r" in art and "s" in art  # both span labels appear


def test_empty_timeline():
    assert Tracer(Simulator()).timeline() == "(empty trace)"


def test_invalid_span_rejected():
    sim = Simulator()
    tracer = Tracer(sim)
    with pytest.raises(ValueError):
        tracer.record("x", "bad", start=5.0, end=1.0)


def test_span_dataclass():
    s = Span("r", "l", 1.0, 3.5)
    assert s.duration == 2.5


def test_span_recorded_on_error():
    """A raising body still records its interval, tagged as an error."""
    sim = Simulator()
    tracer = Tracer(sim)

    def failing():
        with tracer.span("core0", "work"):
            yield sim.timeout(2.0)
            raise RuntimeError("mid-span failure")

    with pytest.raises(RuntimeError):
        sim.run_all([failing()])
    assert len(tracer.spans) == 1
    span = tracer.spans[0]
    assert span.error
    assert span.duration == pytest.approx(2.0)
    assert tracer.busy_time("core0") == pytest.approx(2.0)


def test_spans_mirror_into_metrics_registry():
    from repro.obs import MetricsRegistry

    sim = Simulator()
    reg = MetricsRegistry()
    tracer = Tracer(sim, metrics=reg)

    def ok_then_fail():
        with tracer.span("nic", "tx"):
            yield sim.timeout(1.5)
        with tracer.span("nic", "tx"):
            yield sim.timeout(0.5)
            raise ValueError("drop")

    with pytest.raises(ValueError):
        sim.run_all([ok_then_fail()])
    ok = reg.histogram("trace.span_seconds", resource="nic", label="tx", outcome="ok")
    err = reg.histogram("trace.span_seconds", resource="nic", label="tx", outcome="error")
    assert ok.count == 1 and ok.total == pytest.approx(1.5)
    assert err.count == 1 and err.total == pytest.approx(0.5)


def test_tracer_without_registry_stays_silent():
    sim, tracer = _traced_workload()
    assert len(tracer.metrics) == 0  # the shared null registry


def test_to_spans_unifies_with_request_tracing():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.record("core0", "hash", 0.0, 1.5)
    tracer.record("nic", "send", 1.5, 2.0, error=True)
    spans = tracer.to_spans()
    assert [s.name for s in spans] == ["core0.hash", "nic.send"]
    # Deterministic ids: position in the timeline.
    assert [s.span_id for s in spans] == ["des-000000", "des-000001"]
    assert all(s.trace_id == "des" and s.parent_id is None for s in spans)
    assert spans[1].status == "error"
    assert spans[0].attrs == {"resource": "core0", "label": "hash"}
    # Byte-identical on repeated export.
    assert tracer.export_jsonl() == tracer.export_jsonl()


def test_des_exports_shared_trace_formats():
    from repro.obs import load_trace_jsonl

    sim = Simulator()
    tracer = Tracer(sim)
    tracer.record("core0", "hash", 0.0, 1.0)
    back = load_trace_jsonl(tracer.export_jsonl(trace_id="run7"))
    assert len(back) == 1 and back[0].trace_id == "run7"
    doc = tracer.chrome_trace()
    (event,) = doc["traceEvents"]
    assert event["ph"] == "X" and event["dur"] == pytest.approx(1e6)
    assert doc["metadata"]["schema"] == "repro.trace/v1"


def test_des_spans_mirror_into_metrics_histogram():
    from repro.obs import MetricsRegistry

    sim = Simulator()
    reg = MetricsRegistry()
    tracer = Tracer(sim, metrics=reg)
    tracer.record("core0", "hash", 0.0, 2.0)
    h = reg.histogram("trace.span_seconds", resource="core0", label="hash", outcome="ok")
    assert h.count == 1 and h.total == pytest.approx(2.0)
