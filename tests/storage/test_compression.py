"""Unit tests for the Snappy-format codec."""

import numpy as np
import pytest

from repro.storage.compression import SnappyError, compress, compression_ratio, decompress


def roundtrip(data: bytes) -> None:
    assert decompress(compress(data)) == data


def test_empty():
    roundtrip(b"")
    assert compress(b"") == b"\x00"


def test_tiny_inputs():
    for n in range(1, 8):
        roundtrip(bytes(range(n)))


def test_incompressible_random():
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, size=100_000, dtype=np.uint8).tobytes()
    roundtrip(data)
    # Random bytes should expand only marginally.
    assert compression_ratio(data) < 1.05


def test_highly_repetitive():
    data = b"abcd" * 50_000
    roundtrip(data)
    assert compression_ratio(data) < 0.05


def test_run_of_single_byte_uses_overlapping_copy():
    data = b"\x00" * 10_000
    out = compress(data)
    assert decompress(out) == data
    # Copies are capped at 64 bytes/token (like reference snappy), so a
    # 10 KB run costs ~10000/64 three-byte tokens.
    assert len(out) < 600


def test_pointer_array_compresses_like_snappy():
    """Fig. 7b's workload: arrays of 12-byte pointers with low-entropy rank
    fields compress noticeably; high-entropy offsets resist compression."""
    rng = np.random.default_rng(2)
    n = 20_000
    ranks = rng.integers(0, 4, size=n, dtype="<u4")  # few partitions: low entropy
    offsets = np.arange(n, dtype="<u8") * 64
    ptrs = bytearray()
    for r, o in zip(ranks, offsets):
        ptrs += int(r).to_bytes(4, "little") + int(o).to_bytes(8, "little")
    ptrs = bytes(ptrs)
    roundtrip(ptrs)
    assert compression_ratio(ptrs) < 0.85


def test_text_like_data():
    data = (b"the quick brown fox jumps over the lazy dog. " * 500)[:20_001]
    roundtrip(data)
    assert compression_ratio(data) < 0.2


def test_multi_window_input():
    """Inputs beyond one 64 KiB window exercise window-local matching."""
    rng = np.random.default_rng(3)
    chunk = rng.integers(0, 256, size=1000, dtype=np.uint8).tobytes()
    data = chunk * 200  # ~200 KB
    roundtrip(data)
    assert compression_ratio(data) < 0.3


def test_long_literal_lengths():
    # Force literals with 1-byte and 2-byte extra-length encodings.
    rng = np.random.default_rng(4)
    for size in (61, 200, 300, 5000):
        data = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        roundtrip(data)


def test_all_match_length_tails():
    # Sweep match lengths across the 4..70 boundary splits.
    for tail in range(4, 80):
        data = b"0123456789abcdef" + b"X" * tail + b"0123456789abcdef" + b"X" * tail
        roundtrip(data)


def test_corrupt_inputs_raise():
    good = compress(b"hello world, hello world, hello")
    with pytest.raises(SnappyError):
        decompress(good[:-2])  # truncated body
    with pytest.raises(SnappyError):
        decompress(b"")  # missing preamble
    with pytest.raises(SnappyError):
        decompress(b"\x05\xff")  # bogus stream
    # Copy offset beyond decoded output.
    with pytest.raises(SnappyError):
        decompress(b"\x04" + bytes([0b10, 0xFF, 0x00]))


def test_length_mismatch_detected():
    out = bytearray(compress(b"abcabcabc"))
    out[0] += 1  # corrupt the preamble
    with pytest.raises(SnappyError):
        decompress(bytes(out))


def test_ratio_of_empty_is_one():
    assert compression_ratio(b"") == 1.0
