"""Unit tests for the storage device model."""

import pytest

from repro.storage.blockio import (
    DeviceProfile,
    ExtentLostError,
    IOCounters,
    StorageDevice,
)


def test_append_then_read_roundtrip():
    dev = StorageDevice()
    f = dev.open("x", create=True)
    off = f.append(b"hello")
    assert off == 0
    assert f.append(b"world") == 5
    assert f.read(0, 5) == b"hello"
    assert f.read(5, 5) == b"world"
    assert f.size == 10


def test_short_read_at_eof():
    dev = StorageDevice()
    f = dev.open("x", create=True)
    f.append(b"abc")
    assert f.read(1, 100) == b"bc"  # short read: offset within the extent
    assert f.read(3, 10) == b""  # exactly at EOF is still EOF, not loss


def test_read_past_end_is_loss_not_eof():
    dev = StorageDevice()
    f = dev.open("x", create=True)
    f.append(b"abc")
    with pytest.raises(ExtentLostError):
        f.read(50, 10)


def test_read_after_truncate_underneath_raises():
    dev = StorageDevice()
    f = dev.open("x", create=True)
    f.append(b"0123456789")
    dev.truncate("x", 4)
    assert f.read(0, 4) == b"0123"
    with pytest.raises(ExtentLostError):
        f.read(8, 2)  # those bytes were lost, not merely never written


def test_read_and_append_after_delete_underneath_raise():
    dev = StorageDevice()
    f = dev.open("x", create=True)
    f.append(b"abc")
    dev.delete("x")
    with pytest.raises(ExtentLostError):
        f.read(0, 1)
    with pytest.raises(ExtentLostError):
        f.append(b"more")


def test_corrupt_api_validates_and_flips():
    dev = StorageDevice()
    f = dev.open("x", create=True)
    f.append(bytes([0x10, 0x20, 0x30]))
    dev.corrupt("x", 1)  # default: +1
    assert f.read(0, 3) == bytes([0x10, 0x21, 0x30])
    dev.corrupt("x", 1, xor=0x80)  # single-bit flip
    assert f.read(0, 3) == bytes([0x10, 0xA1, 0x30])
    with pytest.raises(ValueError):
        dev.corrupt("x", 99)
    with pytest.raises(ValueError):
        dev.corrupt("x", 0, delta=1, xor=1)
    with pytest.raises(FileNotFoundError):
        dev.corrupt("nope", 0)


def test_truncate_and_delete_validate():
    dev = StorageDevice()
    dev.open("x", create=True).append(b"abcdef")
    with pytest.raises(ValueError):
        dev.truncate("x", 99)
    dev.truncate("x", 2)
    assert dev.file_size("x") == 2
    with pytest.raises(FileNotFoundError):
        dev.delete("gone")
    dev.delete("x")
    assert not dev.exists("x")


def test_missing_file_raises():
    dev = StorageDevice()
    with pytest.raises(FileNotFoundError):
        dev.open("nope")


def test_counters_track_ops_and_bytes():
    dev = StorageDevice(DeviceProfile(read_bandwidth=100.0, write_bandwidth=50.0, seek_time=0.5))
    f = dev.open("x", create=True)
    f.append(b"A" * 100)
    f.read(0, 60)
    c = dev.counters
    assert c.writes == 1 and c.bytes_written == 100
    assert c.reads == 1 and c.bytes_read == 60
    assert c.write_time == pytest.approx(0.5 + 100 / 50.0)
    assert c.read_time == pytest.approx(0.5 + 60 / 100.0)


def test_counter_snapshot_delta():
    dev = StorageDevice()
    f = dev.open("x", create=True)
    f.append(b"1234")
    before = dev.counters.snapshot()
    f.read(0, 4)
    d = dev.counters.delta(before)
    assert d.reads == 1
    assert d.writes == 0
    assert d.bytes_read == 4


def test_profile_validation():
    with pytest.raises(ValueError):
        DeviceProfile(read_bandwidth=0)
    with pytest.raises(ValueError):
        DeviceProfile(seek_time=-1)


def test_closed_file_rejects_io():
    dev = StorageDevice()
    with dev.open("x", create=True) as f:
        f.append(b"z")
    with pytest.raises(ValueError):
        f.read(0, 1)
    with pytest.raises(ValueError):
        f.append(b"y")


def test_negative_read_args_rejected():
    dev = StorageDevice()
    f = dev.open("x", create=True)
    with pytest.raises(ValueError):
        f.read(-1, 4)
    with pytest.raises(ValueError):
        f.read(0, -4)


def test_device_inventory():
    dev = StorageDevice()
    dev.open("b", create=True).append(b"xx")
    dev.open("a", create=True).append(b"y")
    assert dev.list_files() == ["a", "b"]
    assert dev.exists("a") and not dev.exists("c")
    assert dev.total_bytes_stored() == 3
    assert dev.file_size("b") == 2


def test_iocounters_defaults():
    c = IOCounters()
    assert c.reads == c.writes == c.bytes_read == c.bytes_written == 0
