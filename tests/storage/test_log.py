"""Unit tests for value logs and data pointers."""

import numpy as np
import pytest

from repro.storage.blockio import StorageDevice
from repro.storage.log import POINTER_BYTES, DataPointer, ValueLog


def test_pointer_pack_unpack():
    p = DataPointer(rank=7, offset=123456789)
    blob = p.pack()
    assert len(blob) == POINTER_BYTES == 12
    assert DataPointer.unpack(blob) == p


def test_pointer_unpack_rejects_wrong_size():
    with pytest.raises(ValueError):
        DataPointer.unpack(b"\x00" * 11)


def test_append_read_roundtrip():
    dev = StorageDevice()
    log = ValueLog(dev, rank=3)
    p1 = log.append(b"value-one")
    p2 = log.append(b"value-two-longer")
    assert log.read(p1) == b"value-one"
    assert log.read(p2) == b"value-two-longer"
    assert len(log) == 2
    assert p1.rank == p2.rank == 3


def test_read_value_larger_than_hint():
    dev = StorageDevice()
    log = ValueLog(dev, rank=0)
    big = bytes(range(256)) * 40  # 10 KB > default 4 KB hint
    p = log.append(big)
    assert log.read(p) == big
    assert dev.counters.reads == 2  # hint read + tail read


def test_single_seek_for_small_values():
    dev = StorageDevice()
    log = ValueLog(dev, rank=0)
    p = log.append(b"x" * 64)
    before = dev.counters.snapshot()
    log.read(p)
    assert dev.counters.delta(before).reads == 1


def test_wrong_rank_pointer_rejected():
    dev = StorageDevice()
    log = ValueLog(dev, rank=1)
    p = log.append(b"data")
    with pytest.raises(ValueError):
        log.read(DataPointer(rank=2, offset=p.offset))


def test_bad_offset_rejected():
    dev = StorageDevice()
    log = ValueLog(dev, rank=0)
    log.append(b"data")
    with pytest.raises(ValueError):
        log.read(DataPointer(rank=0, offset=10_000))


def test_negative_rank_rejected():
    with pytest.raises(ValueError):
        ValueLog(StorageDevice(), rank=-1)


def test_size_accounting():
    dev = StorageDevice()
    log = ValueLog(dev, rank=0)
    log.append(b"abcd")
    assert log.size_bytes == 4 + 4  # u32 length prefix + body


def test_filename_is_per_rank():
    dev = StorageDevice()
    ValueLog(dev, rank=0)
    ValueLog(dev, rank=1)
    assert dev.list_files() == ["vlog.000000", "vlog.000001"]


def test_read_many_matches_scalar_any_order():
    dev = StorageDevice()
    log = ValueLog(dev, rank=0)
    ptrs = [log.append(f"value-{i}".encode() * (1 + i % 5)) for i in range(50)]
    shuffled = [ptrs[i] for i in np.random.default_rng(8).permutation(50)]
    out = log.read_many(shuffled)
    assert out == [log.read(p) for p in shuffled]


def test_read_many_sweeps_offsets_monotonically():
    dev = StorageDevice()
    log = ValueLog(dev, rank=0)
    ptrs = [log.append(bytes(16)) for _ in range(20)]
    before = dev.counters.snapshot()
    log.read_many(list(reversed(ptrs)))
    # Same read count as scalar; the batch only reorders the sweep.
    assert dev.counters.delta(before).reads == 20


def test_read_many_empty():
    log = ValueLog(StorageDevice(), rank=0)
    assert log.read_many([]) == []
