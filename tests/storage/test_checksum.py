"""Unit + property tests for the block checksum."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.checksum import CHECKSUM_BYTES, fastsum64


def test_deterministic():
    assert fastsum64(b"hello") == fastsum64(b"hello")
    assert CHECKSUM_BYTES == 8


def test_empty_input():
    assert isinstance(fastsum64(b""), int)
    assert fastsum64(b"") != fastsum64(b"\x00")


def test_length_sensitivity():
    # Zero padding must not collide with the unpadded input.
    assert fastsum64(b"abc") != fastsum64(b"abc\x00")
    assert fastsum64(b"abc\x00\x00") != fastsum64(b"abc\x00")


def test_seed_changes_sum():
    assert fastsum64(b"data", seed=1) != fastsum64(b"data", seed=2)


def test_position_sensitivity():
    # Swapping two words must change the sum (weighted by position).
    a = b"A" * 8 + b"B" * 8
    b = b"B" * 8 + b"A" * 8
    assert fastsum64(a) != fastsum64(b)


@given(data=st.binary(min_size=1, max_size=2000), bit=st.integers(min_value=0, max_value=15999))
@settings(max_examples=150, deadline=None)
def test_single_bit_flip_detected(data, bit):
    bit %= len(data) * 8
    flipped = bytearray(data)
    flipped[bit // 8] ^= 1 << (bit % 8)
    assert fastsum64(bytes(flipped)) != fastsum64(data)


def test_sum_distribution_is_wide():
    rng = np.random.default_rng(1)
    sums = [fastsum64(rng.integers(0, 256, 100, dtype=np.uint8).tobytes()) for _ in range(200)]
    assert len(set(sums)) == 200
    # High bits are populated too.
    assert any(s >> 60 for s in sums)


def test_large_input_fast_path():
    data = bytes(np.random.default_rng(2).integers(0, 256, 1 << 20, dtype=np.uint8))
    s = fastsum64(data)
    assert fastsum64(data) == s
