"""Unit tests for the flattened-LSM SSTable format."""

import numpy as np
import pytest

from repro.storage.blockio import StorageDevice
from repro.storage.sstable import FOOTER_BYTES, SSTableReader, SSTableWriter


def build(dev, name, items, **kw):
    w = SSTableWriter(dev, name, **kw)
    for k, v in items:
        w.add(k, v)
    return w.finish()


def test_roundtrip_sorted_lookup():
    dev = StorageDevice()
    items = [(k, f"v{k}".encode()) for k in (5, 1, 9, 3, 7)]
    build(dev, "t", items, block_size=64)
    r = SSTableReader(dev, "t")
    for k, v in items:
        assert r.get(k) == v
    assert r.get(2) is None
    assert r.get(100) is None


def test_scan_returns_key_order():
    dev = StorageDevice()
    rng = np.random.default_rng(1)
    keys = rng.permutation(200).astype(np.uint64)
    build(dev, "t", [(int(k), bytes([int(k) % 251])) for k in keys], block_size=128)
    r = SSTableReader(dev, "t")
    scanned = r.scan()
    assert [k for k, _ in scanned] == sorted(int(k) for k in keys)
    assert len(scanned) == 200


def test_multi_block_boundaries():
    dev = StorageDevice()
    items = [(k, b"x" * 50) for k in range(500)]
    stats = build(dev, "t", items, block_size=256)
    assert stats.nentries == 500
    r = SSTableReader(dev, "t")
    for k in (0, 1, 249, 250, 499):
        assert r.get(k) == b"x" * 50


def test_stats_accounting():
    dev = StorageDevice()
    stats = build(dev, "t", [(1, b"abc"), (2, b"defg")], block_size=1024)
    assert stats.nentries == 2
    assert stats.total_bytes == dev.file_size("t")
    assert stats.data_bytes > 0 and stats.index_bytes > 0 and stats.filter_bytes > 0


def test_bloom_gate_blocks_absent_keys():
    dev = StorageDevice()
    build(dev, "t", [(k, b"v") for k in range(0, 2000, 2)], block_size=512)
    r = SSTableReader(dev, "t")
    before = dev.counters.snapshot()
    misses = sum(r.get(k) is not None for k in range(1, 2000, 2))
    assert misses == 0
    # The Bloom filter should suppress nearly all data-block reads.
    assert dev.counters.delta(before).reads < 100


def test_no_bloom_mode():
    dev = StorageDevice()
    build(dev, "t", [(1, b"a")], bloom_bits_per_key=0)
    r = SSTableReader(dev, "t")
    assert r.may_contain(999)  # no filter: must say maybe
    assert r.get(1) == b"a"


def test_duplicate_keys_first_wins():
    dev = StorageDevice()
    w = SSTableWriter(dev, "t", block_size=64)
    w.add(7, b"first")
    w.add(7, b"second")
    w.finish()
    assert SSTableReader(dev, "t").get(7) == b"first"


def test_duplicate_keys_across_block_boundary():
    dev = StorageDevice()
    w = SSTableWriter(dev, "t", block_size=64)
    for i in range(20):
        w.add(7, b"dup%02d" % i)
    w.finish()
    assert SSTableReader(dev, "t").get(7) == b"dup00"


def test_empty_table():
    dev = StorageDevice()
    stats = build(dev, "t", [])
    assert stats.nentries == 0
    r = SSTableReader(dev, "t")
    assert r.get(1) is None
    assert r.scan() == []


def test_read_costs_match_fig11_structure():
    """Opening costs footer+index+filter reads; get() costs one block read."""
    dev = StorageDevice()
    build(dev, "t", [(k, b"v" * 16) for k in range(100)], block_size=512)
    before = dev.counters.snapshot()
    r = SSTableReader(dev, "t")
    open_reads = dev.counters.delta(before).reads
    assert open_reads == 2  # footer, then filter+index in one span
    before = dev.counters.snapshot()
    assert r.get(50) is not None
    assert dev.counters.delta(before).reads == 1


def test_writer_finish_twice_rejected():
    dev = StorageDevice()
    w = SSTableWriter(dev, "t")
    w.finish()
    with pytest.raises(ValueError):
        w.finish()
    with pytest.raises(ValueError):
        w.add(1, b"late")


def test_add_many_validates_lengths():
    dev = StorageDevice()
    w = SSTableWriter(dev, "t")
    with pytest.raises(ValueError):
        w.add_many(np.asarray([1, 2], dtype=np.uint64), [b"only-one"])


def test_tiny_block_size_rejected():
    with pytest.raises(ValueError):
        SSTableWriter(StorageDevice(), "t", block_size=16)


def test_footer_magic_validated():
    dev = StorageDevice()
    f = dev.open("junk", create=True)
    f.append(b"\x00" * FOOTER_BYTES)
    with pytest.raises(ValueError):
        SSTableReader(dev, "junk")
    g = dev.open("short", create=True)
    g.append(b"\x01")
    with pytest.raises(ValueError):
        SSTableReader(dev, "short")


def test_large_values():
    dev = StorageDevice()
    big = bytes(np.random.default_rng(2).integers(0, 256, 50_000, dtype=np.uint8))
    build(dev, "t", [(1, big)], block_size=1024)
    assert SSTableReader(dev, "t").get(1) == big
