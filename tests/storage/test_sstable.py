"""Unit tests for the flattened-LSM SSTable format."""

import numpy as np
import pytest

from repro.storage.blockio import StorageDevice
from repro.storage.sstable import FOOTER_BYTES, SSTableReader, SSTableWriter


def build(dev, name, items, **kw):
    w = SSTableWriter(dev, name, **kw)
    for k, v in items:
        w.add(k, v)
    return w.finish()


def test_roundtrip_sorted_lookup():
    dev = StorageDevice()
    items = [(k, f"v{k}".encode()) for k in (5, 1, 9, 3, 7)]
    build(dev, "t", items, block_size=64)
    r = SSTableReader(dev, "t")
    for k, v in items:
        assert r.get(k) == v
    assert r.get(2) is None
    assert r.get(100) is None


def test_scan_returns_key_order():
    dev = StorageDevice()
    rng = np.random.default_rng(1)
    keys = rng.permutation(200).astype(np.uint64)
    build(dev, "t", [(int(k), bytes([int(k) % 251])) for k in keys], block_size=128)
    r = SSTableReader(dev, "t")
    scanned = r.scan()
    assert [k for k, _ in scanned] == sorted(int(k) for k in keys)
    assert len(scanned) == 200


def test_multi_block_boundaries():
    dev = StorageDevice()
    items = [(k, b"x" * 50) for k in range(500)]
    stats = build(dev, "t", items, block_size=256)
    assert stats.nentries == 500
    r = SSTableReader(dev, "t")
    for k in (0, 1, 249, 250, 499):
        assert r.get(k) == b"x" * 50


def test_stats_accounting():
    dev = StorageDevice()
    stats = build(dev, "t", [(1, b"abc"), (2, b"defg")], block_size=1024)
    assert stats.nentries == 2
    assert stats.total_bytes == dev.file_size("t")
    assert stats.data_bytes > 0 and stats.index_bytes > 0 and stats.filter_bytes > 0


def test_bloom_gate_blocks_absent_keys():
    dev = StorageDevice()
    build(dev, "t", [(k, b"v") for k in range(0, 2000, 2)], block_size=512)
    r = SSTableReader(dev, "t")
    before = dev.counters.snapshot()
    misses = sum(r.get(k) is not None for k in range(1, 2000, 2))
    assert misses == 0
    # The Bloom filter should suppress nearly all data-block reads.
    assert dev.counters.delta(before).reads < 100


def test_no_bloom_mode():
    dev = StorageDevice()
    build(dev, "t", [(1, b"a")], bloom_bits_per_key=0)
    r = SSTableReader(dev, "t")
    assert r.may_contain(999)  # no filter: must say maybe
    assert r.get(1) == b"a"


def test_duplicate_keys_first_wins():
    dev = StorageDevice()
    w = SSTableWriter(dev, "t", block_size=64)
    w.add(7, b"first")
    w.add(7, b"second")
    w.finish()
    assert SSTableReader(dev, "t").get(7) == b"first"


def test_duplicate_keys_across_block_boundary():
    dev = StorageDevice()
    w = SSTableWriter(dev, "t", block_size=64)
    for i in range(20):
        w.add(7, b"dup%02d" % i)
    w.finish()
    assert SSTableReader(dev, "t").get(7) == b"dup00"


def test_empty_table():
    dev = StorageDevice()
    stats = build(dev, "t", [])
    assert stats.nentries == 0
    r = SSTableReader(dev, "t")
    assert r.get(1) is None
    assert r.scan() == []


def test_read_costs_match_fig11_structure():
    """Opening costs footer+index+filter reads; get() costs one block read."""
    dev = StorageDevice()
    build(dev, "t", [(k, b"v" * 16) for k in range(100)], block_size=512)
    before = dev.counters.snapshot()
    r = SSTableReader(dev, "t")
    open_reads = dev.counters.delta(before).reads
    assert open_reads == 2  # footer, then filter+index in one span
    before = dev.counters.snapshot()
    assert r.get(50) is not None
    assert dev.counters.delta(before).reads == 1


def test_writer_finish_twice_rejected():
    dev = StorageDevice()
    w = SSTableWriter(dev, "t")
    w.finish()
    with pytest.raises(ValueError):
        w.finish()
    with pytest.raises(ValueError):
        w.add(1, b"late")


def test_add_many_validates_lengths():
    dev = StorageDevice()
    w = SSTableWriter(dev, "t")
    with pytest.raises(ValueError):
        w.add_many(np.asarray([1, 2], dtype=np.uint64), [b"only-one"])


def test_tiny_block_size_rejected():
    with pytest.raises(ValueError):
        SSTableWriter(StorageDevice(), "t", block_size=16)


def test_footer_magic_validated():
    dev = StorageDevice()
    f = dev.open("junk", create=True)
    f.append(b"\x00" * FOOTER_BYTES)
    with pytest.raises(ValueError):
        SSTableReader(dev, "junk")
    g = dev.open("short", create=True)
    g.append(b"\x01")
    with pytest.raises(ValueError):
        SSTableReader(dev, "short")


def test_large_values():
    dev = StorageDevice()
    big = bytes(np.random.default_rng(2).integers(0, 256, 50_000, dtype=np.uint8))
    build(dev, "t", [(1, big)], block_size=1024)
    assert SSTableReader(dev, "t").get(1) == big


class TestGetMany:
    def _probe(self, r, keys):
        vals, blocks = r.get_many(np.asarray(keys, dtype=np.uint64))
        assert vals == [r.get(int(k)) for k in keys]
        return vals, blocks

    def test_fixed_width_matches_scalar(self):
        dev = StorageDevice()
        rng = np.random.default_rng(30)
        keys = rng.permutation(500).astype(np.uint64) * 3
        build(dev, "t", [(int(k), int(k).to_bytes(8, "little")) for k in keys],
              block_size=128)
        r = SSTableReader(dev, "t")
        probe = np.concatenate([keys[:200], np.asarray([1, 4, 10_000], dtype=np.uint64)])
        self._probe(r, probe)

    def test_variable_width_matches_scalar(self):
        dev = StorageDevice()
        items = [(k, b"x" * (1 + k % 37)) for k in range(300)]
        build(dev, "t", items, block_size=256, vectorized=False)
        r = SSTableReader(dev, "t")
        self._probe(r, list(range(0, 320, 3)))

    def test_duplicate_keys_return_first_inserted(self):
        dev = StorageDevice()
        w = SSTableWriter(dev, "t", block_size=64)
        for i in range(40):
            w.add(7, f"a{i}".encode())  # duplicates straddle block boundaries
        w.add(9, b"nine")
        w.finish()
        r = SSTableReader(dev, "t")
        vals, _ = r.get_many(np.asarray([7, 9, 8], dtype=np.uint64))
        assert vals == [b"a0", b"nine", None]
        assert r.get(7) == b"a0"

    def test_block_coalescing_single_read_per_block(self):
        dev = StorageDevice()
        keys = np.arange(256, dtype=np.uint64)
        build(dev, "t", [(int(k), bytes(8)) for k in keys], block_size=1 << 20,
              bloom_bits_per_key=0.0)
        r = SSTableReader(dev, "t", block_cache_blocks=0)
        before = dev.counters.snapshot()
        vals, blocks = r.get_many(keys)  # all keys live in one block
        d = dev.counters.delta(before)
        assert all(v is not None for v in vals)
        assert blocks == 1
        assert d.reads == 1

    def test_empty_batch_and_empty_table(self):
        dev = StorageDevice()
        build(dev, "t", [])
        r = SSTableReader(dev, "t")
        assert r.get_many(np.zeros(0, dtype=np.uint64)) == ([], 0)
        assert r.get_many(np.asarray([3], dtype=np.uint64)) == ([None], 0)


class TestBlockCache:
    def test_repeat_gets_hit_cache(self):
        from repro.obs import MetricsRegistry

        m = MetricsRegistry()
        dev = StorageDevice(metrics=m)
        build(dev, "t", [(k, bytes([k % 251])) for k in range(64)], block_size=1 << 20)
        r = SSTableReader(dev, "t")
        before = dev.counters.snapshot()
        for k in (1, 2, 3, 4):
            r.get(k)
        assert dev.counters.delta(before).reads == 1  # one block fetch, 3 hits
        assert m.total("sstable.block_cache.hits") == 3
        assert m.total("sstable.block_cache.misses") == 1

    def test_cache_disabled(self):
        dev = StorageDevice()
        build(dev, "t", [(k, bytes(4)) for k in range(64)], block_size=1 << 20)
        r = SSTableReader(dev, "t", block_cache_blocks=0)
        before = dev.counters.snapshot()
        for k in (1, 2):
            r.get(k)
        assert dev.counters.delta(before).reads == 2

    def test_eviction_bounds_cache(self):
        dev = StorageDevice()
        build(dev, "t", [(k, bytes(32)) for k in range(200)], block_size=64)
        r = SSTableReader(dev, "t", block_cache_blocks=2)
        for k in range(0, 200, 5):
            r.get(k)
        assert len(r._block_cache) <= 2
        assert len(r._parsed_cache) <= 2
