"""Unit tests for memtables, spilled runs, and the flattened merge."""

import numpy as np
import pytest

from repro.storage.blockio import StorageDevice
from repro.storage.memtable import MemTable, RunWriter, flatten_runs
from repro.storage.sstable import SSTableReader, SSTableWriter


def test_memtable_budget():
    mt = MemTable(budget_bytes=100)
    assert mt.add(1, b"x" * 40)  # 48 bytes
    assert not mt.add(2, b"y" * 50)  # 106 ≥ 100
    assert mt.full
    assert len(mt) == 2
    assert mt.size_bytes == 106


def test_memtable_sorted_items_stable():
    mt = MemTable()
    mt.add(5, b"first")
    mt.add(1, b"a")
    mt.add(5, b"second")
    items = mt.sorted_items()
    assert [k for k, _ in items] == [1, 5, 5]
    assert items[1][1] == b"first" and items[2][1] == b"second"


def test_memtable_reset():
    mt = MemTable(budget_bytes=64)
    mt.add(1, b"v")
    mt.reset()
    assert len(mt) == 0 and mt.size_bytes == 0 and not mt.full


def test_memtable_validates_budget():
    with pytest.raises(ValueError):
        MemTable(budget_bytes=10)


def test_spill_and_read_run():
    dev = StorageDevice()
    rw = RunWriter(dev, "runs.0")
    mt = MemTable()
    for k in (9, 3, 7):
        mt.add(k, b"v%d" % k)
    rw.spill(mt)
    assert len(mt) == 0  # spill resets
    assert rw.total_entries == 3
    assert rw.read_run(0) == [(3, b"v3"), (7, b"v7"), (9, b"v9")]


def test_spill_empty_is_noop():
    dev = StorageDevice()
    rw = RunWriter(dev, "runs.0")
    rw.spill(MemTable())
    assert rw.runs == []


def test_flatten_merges_runs_in_key_order():
    dev = StorageDevice()
    rw = RunWriter(dev, "runs.0")
    rng = np.random.default_rng(1)
    all_items = []
    for _ in range(4):
        mt = MemTable()
        for _ in range(200):
            k = int(rng.integers(0, 10_000))
            v = bytes([k % 251])
            mt.add(k, v)
            all_items.append((k, v))
        rw.spill(mt)
    stats = flatten_runs(rw, SSTableWriter(dev, "final", block_size=512))
    assert stats.nentries == 800
    reader = SSTableReader(dev, "final")
    scanned = reader.scan()
    assert [k for k, _ in scanned] == sorted(k for k, _ in all_items)


def test_flatten_first_write_wins_across_runs():
    dev = StorageDevice()
    rw = RunWriter(dev, "runs.0")
    m1 = MemTable()
    m1.add(42, b"early")
    rw.spill(m1)
    m2 = MemTable()
    m2.add(42, b"late")
    rw.spill(m2)
    flatten_runs(rw, SSTableWriter(dev, "final", block_size=512))
    assert SSTableReader(dev, "final").get(42) == b"early"


def test_end_to_end_bounded_memory_write():
    """Drive the paper's loop: buffer → spill at budget → flatten."""
    dev = StorageDevice()
    rw = RunWriter(dev, "runs.0")
    mt = MemTable(budget_bytes=4096)
    rng = np.random.default_rng(2)
    keys = rng.integers(0, 2**32, size=2000, dtype=np.uint64)
    for k in keys:
        if not mt.add(int(k), b"p" * 24):
            rw.spill(mt)
    rw.spill(mt)
    assert len(rw.runs) > 5  # budget forced many spills
    stats = flatten_runs(rw, SSTableWriter(dev, "final", block_size=1024))
    assert stats.nentries == 2000
    reader = SSTableReader(dev, "final")
    for k in keys[:25]:
        assert reader.get(int(k)) == b"p" * 24
