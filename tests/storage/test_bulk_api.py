"""Bulk (vectorized) storage APIs must match their scalar references byte
for byte — `add_many` / `append_many` are speedups, not new semantics."""

import numpy as np
import pytest

from repro.storage.blockio import StorageDevice
from repro.storage.log import ValueLog
from repro.storage.memtable import MemTable, RunWriter, flatten_runs
from repro.storage.sstable import SSTableReader, SSTableWriter


def _kv(n, width, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 62, size=n).astype(np.uint64)
    values = rng.integers(0, 256, size=(n, width)).astype(np.uint8)
    return keys, values


def _extent(device, name):
    f = device.open(name)
    return f.read(0, f.size)


def test_sstable_add_many_bytes_identical_to_scalar():
    keys, values = _kv(5000, 24, seed=1)
    order = np.argsort(keys, kind="stable")
    keys, values = keys[order], values[order]
    dev_v, dev_s = StorageDevice(), StorageDevice()
    wv = SSTableWriter(dev_v, "t", block_size=4096, vectorized=True)
    ws = SSTableWriter(dev_s, "t", block_size=4096, vectorized=False)
    wv.add_many(keys, values)
    for k, v in zip(keys.tolist(), values):
        ws.add(k, v.tobytes())
    sv, ss = wv.finish(), ws.finish()
    assert sv == ss
    assert _extent(dev_v, "t") == _extent(dev_s, "t")


def test_sstable_add_many_list_values_matches_matrix():
    keys, values = _kv(300, 16, seed=2)
    order = np.argsort(keys, kind="stable")
    keys, values = keys[order], values[order]
    dev_a, dev_b = StorageDevice(), StorageDevice()
    wa = SSTableWriter(dev_a, "t", block_size=2048)
    wb = SSTableWriter(dev_b, "t", block_size=2048)
    wa.add_many(keys, values)
    wb.add_many(keys, [v.tobytes() for v in values])
    wa.finish(), wb.finish()
    assert _extent(dev_a, "t") == _extent(dev_b, "t")


def test_vlog_append_many_offsets_match_scalar():
    _, values = _kv(1000, 40, seed=3)
    dev_v, dev_s = StorageDevice(), StorageDevice()
    bulk_offsets = ValueLog(dev_v, rank=0).append_many(values)
    log_s = ValueLog(dev_s, rank=0)
    scalar_offsets = [log_s.append(v.tobytes()).offset for v in values]
    assert bulk_offsets.tolist() == scalar_offsets
    name = ValueLog.filename(0)
    assert _extent(dev_v, name) == _extent(dev_s, name)


def test_vlog_append_many_roundtrip_pointers():
    _, values = _kv(64, 12, seed=4)
    dev = StorageDevice()
    log = ValueLog(dev, rank=3)
    offsets = log.append_many(values)
    from repro.storage.log import DataPointer

    for off, v in zip(offsets.tolist(), values):
        assert log.read(DataPointer(3, int(off))) == v.tobytes()


def test_memtable_add_many_matches_scalar_budget_semantics():
    keys, values = _kv(200, 16, seed=5)
    # Scalar: add until False (the crossing record is kept).
    scalar = MemTable(budget_bytes=1000)
    taken_scalar = 0
    for k, v in zip(keys.tolist(), values):
        taken_scalar += 1
        if not scalar.add(k, v.tobytes()):
            break
    bulk = MemTable(budget_bytes=1000)
    taken_bulk = bulk.add_many(keys, values)
    assert taken_bulk == taken_scalar
    assert bulk.size_bytes == scalar.size_bytes
    assert bulk.sorted_items() == scalar.sorted_items()
    assert bulk.add_many(keys, values) == 0  # full: nothing more fits


def test_memtable_mixed_scalar_and_bulk_keeps_insertion_order():
    mt = MemTable(1 << 20)
    mt.add(9, b"scalar-first----")
    keys = np.asarray([9, 1], dtype=np.uint64)
    vals = np.frombuffer(b"bulk-second-----bulk-key-one----", dtype=np.uint8).reshape(2, 16)
    mt.add_many(keys, vals)
    mt.add(1, b"scalar-last-----")
    items = mt.sorted_items()
    assert items[0] == (1, b"bulk-key-one----")  # first write of key 1
    assert items[2] == (9, b"scalar-first----")  # first write of key 9


@pytest.mark.parametrize("width", [16, 0])
def test_spill_vectorized_and_scalar_bytes_identical(width):
    keys, values = _kv(500, width, seed=6)
    dev_v, dev_s = StorageDevice(), StorageDevice()
    rw_v, rw_s = RunWriter(dev_v, "runs"), RunWriter(dev_s, "runs")
    for rw, vectorized in ((rw_v, True), (rw_s, False)):
        mt = MemTable(1 << 20)
        mt.add_many(keys, values)
        rw.spill(mt, vectorized=vectorized)
    assert _extent(dev_v, "runs") == _extent(dev_s, "runs")
    assert rw_v.read_run(0) == rw_s.read_run(0)


def test_read_run_arrays_roundtrip():
    keys, values = _kv(400, 16, seed=7)
    dev = StorageDevice()
    rw = RunWriter(dev, "runs")
    mt = MemTable(1 << 20)
    mt.add_many(keys, values)
    rw.spill(mt)
    got_keys, got_values = rw.read_run_arrays(0)
    order = np.argsort(keys, kind="stable")
    assert got_keys.tolist() == keys[order].tolist()
    assert isinstance(got_values, np.ndarray)
    assert got_values.tobytes() == values[order].tobytes()


def test_read_run_arrays_variable_width():
    dev = StorageDevice()
    rw = RunWriter(dev, "runs")
    mt = MemTable(1 << 20)
    entries = [(5, b"short"), (2, b"a-much-longer-value"), (9, b"")]
    for k, v in entries:
        mt.add(k, v)
    rw.spill(mt)
    got_keys, got_values = rw.read_run_arrays(0)
    assert got_keys.tolist() == [2, 5, 9]
    assert got_values == [b"a-much-longer-value", b"short", b""]


@pytest.mark.parametrize("dup_seed", [8, 9])
def test_flatten_heap_and_bulk_bytes_identical(dup_seed):
    """The array-based flatten must emit exactly the bytes of the reference
    k-way heap merge — including first-write-wins order for duplicates."""
    rng = np.random.default_rng(dup_seed)
    devs = StorageDevice(), StorageDevice()
    writers = []
    for dev in devs:
        rw = RunWriter(dev, "runs")
        gen = np.random.default_rng(dup_seed)  # same spills on both devices
        for _ in range(4):
            keys = gen.integers(0, 200, size=150).astype(np.uint64)  # many dups
            values = gen.integers(0, 256, size=(150, 16)).astype(np.uint8)
            mt = MemTable(1 << 20)
            mt.add_many(keys, values)
            rw.spill(mt)
        writers.append(rw)
    tables = [
        SSTableWriter(dev, "final", block_size=4096, vectorized=bulk)
        for dev, bulk in zip(devs, (True, False))
    ]
    stats_bulk = flatten_runs(writers[0], tables[0], bulk=True)
    stats_heap = flatten_runs(writers[1], tables[1], bulk=False)
    assert stats_bulk == stats_heap
    assert _extent(devs[0], "final") == _extent(devs[1], "final")
    reader = SSTableReader(devs[0], "final")
    assert len(reader.scan()) == stats_bulk.nentries
