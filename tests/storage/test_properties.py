"""Property-based tests for the storage substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.blockio import StorageDevice
from repro.storage.compression import SnappyError, compress, decompress
from repro.storage.log import ValueLog
from repro.storage.sstable import SSTableReader, SSTableWriter


@given(data=st.binary(min_size=0, max_size=5000))
@settings(max_examples=120, deadline=None)
def test_snappy_roundtrip_arbitrary_bytes(data):
    assert decompress(compress(data)) == data


@given(
    pattern=st.binary(min_size=1, max_size=32),
    reps=st.integers(min_value=1, max_value=400),
    tail=st.binary(min_size=0, max_size=16),
)
@settings(max_examples=80, deadline=None)
def test_snappy_roundtrip_repetitive(pattern, reps, tail):
    data = pattern * reps + tail
    out = compress(data)
    assert decompress(out) == data
    if reps > 50 and len(pattern) >= 4:
        assert len(out) < len(data)  # long repeats must actually compress


@given(junk=st.binary(min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_snappy_decoder_never_crashes_on_junk(junk):
    """Arbitrary input either decodes to *something* length-consistent or
    raises SnappyError — never an unhandled exception."""
    try:
        decompress(junk)
    except SnappyError:
        pass


@given(
    items=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**63 - 1), st.binary(min_size=0, max_size=40)
        ),
        min_size=0,
        max_size=120,
    ),
    block_size=st.sampled_from([64, 256, 4096]),
)
@settings(max_examples=60, deadline=None)
def test_sstable_roundtrip_property(items, block_size):
    dev = StorageDevice()
    w = SSTableWriter(dev, "t", block_size=block_size)
    for k, v in items:
        w.add(k, v)
    stats = w.finish()
    assert stats.nentries == len(items)
    r = SSTableReader(dev, "t")
    # First value per key wins; absent keys return None.
    first = {}
    for k, v in items:
        first.setdefault(k, v)
    for k, v in list(first.items())[:50]:
        assert r.get(k) == v
    scanned = r.scan()
    assert [k for k, _ in scanned] == sorted(k for k, _ in items)


@given(values=st.lists(st.binary(min_size=0, max_size=100), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_valuelog_roundtrip_property(values):
    dev = StorageDevice()
    log = ValueLog(dev, rank=0)
    ptrs = [log.append(v) for v in values]
    # Read back in a shuffled order: pointers are position-independent.
    order = np.random.default_rng(0).permutation(len(values))
    for i in order:
        assert log.read(ptrs[i]) == values[i]
