"""Unit tests for the dataset manifest."""

import pytest

from repro.storage.blockio import StorageDevice
from repro.storage.manifest import MANIFEST_NAME, EpochInfo, Manifest


def _info(epoch, records=100):
    return EpochInfo(epoch=epoch, records=records, files=(f"part.{epoch:03d}.000000",), bytes=4096)


def test_roundtrip_bytes():
    m = Manifest(fmt="filterkv", nranks=8, value_bytes=56)
    m.add_epoch(_info(0))
    m.add_epoch(_info(1, records=200))
    n = Manifest.from_bytes(m.to_bytes())
    assert n.fmt == "filterkv"
    assert n.nranks == 8 and n.value_bytes == 56
    assert n.epoch_ids == [0, 1]
    assert n.total_records == 300
    assert n.epochs[1].files == ("part.001.000000",)


def test_save_and_load_from_device():
    dev = StorageDevice()
    m = Manifest(fmt="base", nranks=4, value_bytes=24)
    m.add_epoch(_info(0))
    m.save(dev)
    assert dev.exists(MANIFEST_NAME)
    n = Manifest.load(dev)
    assert n.fmt == "base" and n.total_records == 100


def test_save_replaces_previous():
    dev = StorageDevice()
    m = Manifest(fmt="base", nranks=4, value_bytes=24)
    m.save(dev)
    m.add_epoch(_info(0))
    m.save(dev)
    assert Manifest.load(dev).epoch_ids == [0]


def test_epochs_kept_sorted():
    m = Manifest(fmt="base", nranks=2, value_bytes=8)
    m.add_epoch(_info(3))
    m.add_epoch(_info(1))
    assert m.epoch_ids == [1, 3]


def test_duplicate_epoch_rejected():
    m = Manifest(fmt="base", nranks=2, value_bytes=8)
    m.add_epoch(_info(0))
    with pytest.raises(ValueError):
        m.add_epoch(_info(0))


def test_malformed_blob_rejected():
    with pytest.raises(ValueError):
        Manifest.from_bytes(b"not json at all {{{")
    with pytest.raises(ValueError):
        Manifest.from_bytes(b'{"version": 99}')
