"""Unit tests for the dataset manifest and its atomic commit path."""

import pytest

from repro.storage.blockio import StorageDevice
from repro.storage.envelope import seal
from repro.storage.manifest import MANIFEST_NAME, MANIFEST_PREFIX, EpochInfo, Manifest


def _info(epoch, records=100):
    return EpochInfo(epoch=epoch, records=records, files=(f"part.{epoch:03d}.000000",), bytes=4096)


def test_roundtrip_bytes():
    m = Manifest(fmt="filterkv", nranks=8, value_bytes=56)
    m.add_epoch(_info(0))
    m.add_epoch(_info(1, records=200))
    n = Manifest.from_bytes(m.to_bytes())
    assert n.fmt == "filterkv"
    assert n.nranks == 8 and n.value_bytes == 56
    assert n.epoch_ids == [0, 1]
    assert n.total_records == 300
    assert n.epochs[1].files == ("part.001.000000",)


def test_save_and_load_from_device():
    dev = StorageDevice()
    m = Manifest(fmt="base", nranks=4, value_bytes=24)
    m.add_epoch(_info(0))
    m.save(dev)
    assert any(n.startswith(MANIFEST_PREFIX) for n in dev.list_files())
    n = Manifest.load(dev)
    assert n.fmt == "base" and n.total_records == 100


def test_save_replaces_previous():
    dev = StorageDevice()
    m = Manifest(fmt="base", nranks=4, value_bytes=24)
    m.save(dev)
    m.add_epoch(_info(0))
    m.save(dev)
    assert Manifest.load(dev).epoch_ids == [0]


def test_commit_generations_increment_and_gc():
    dev = StorageDevice()
    m = Manifest(fmt="base", nranks=4, value_bytes=24)
    seqs = []
    for epoch in range(4):
        m.add_epoch(_info(epoch))
        seqs.append(m.commit(dev))
    assert seqs == [1, 2, 3, 4]
    gens = sorted(n for n in dev.list_files() if n.startswith(MANIFEST_PREFIX))
    assert gens == ["MANIFEST.000003", "MANIFEST.000004"]  # keep window of 2
    assert Manifest.load(dev).epoch_ids == [0, 1, 2, 3]


def test_torn_commit_falls_back_to_previous_generation():
    dev = StorageDevice()
    m = Manifest(fmt="base", nranks=4, value_bytes=24)
    m.add_epoch(_info(0))
    m.commit(dev)
    m.add_epoch(_info(1))
    m.commit(dev)
    # Tear the newest generation mid-blob, as a crash during commit would.
    newest = max(n for n in dev.list_files() if n.startswith(MANIFEST_PREFIX))
    dev.truncate(newest, dev.file_size(newest) // 2)
    assert Manifest.load(dev).epoch_ids == [0]  # previous version wins


def test_corrupt_commit_falls_back_to_previous_generation():
    dev = StorageDevice()
    m = Manifest(fmt="base", nranks=4, value_bytes=24)
    m.add_epoch(_info(0))
    m.commit(dev)
    m.add_epoch(_info(1))
    m.commit(dev)
    newest = max(n for n in dev.list_files() if n.startswith(MANIFEST_PREFIX))
    dev.corrupt(newest, dev.file_size(newest) // 2, xor=0x40)
    assert Manifest.load(dev).epoch_ids == [0]


def test_load_reads_legacy_unsealed_manifest():
    dev = StorageDevice()
    m = Manifest(fmt="base", nranks=4, value_bytes=24)
    m.add_epoch(_info(0))
    dev.open(MANIFEST_NAME, create=True).append(m.to_bytes())
    assert Manifest.load(dev).epoch_ids == [0]
    # A sealed generation, once present, wins over the legacy extent.
    m.add_epoch(_info(1))
    dev.open(f"{MANIFEST_PREFIX}000001", create=True).append(seal(m.to_bytes()))
    assert Manifest.load(dev).epoch_ids == [0, 1]


def test_load_with_no_manifest_raises():
    with pytest.raises(FileNotFoundError):
        Manifest.load(StorageDevice())


def test_remove_epoch():
    m = Manifest(fmt="base", nranks=2, value_bytes=8)
    m.add_epoch(_info(0))
    m.add_epoch(_info(1))
    assert m.remove_epoch(0).epoch == 0
    assert m.epoch_ids == [1]
    with pytest.raises(KeyError):
        m.remove_epoch(0)


def test_epochs_kept_sorted():
    m = Manifest(fmt="base", nranks=2, value_bytes=8)
    m.add_epoch(_info(3))
    m.add_epoch(_info(1))
    assert m.epoch_ids == [1, 3]


def test_duplicate_epoch_rejected():
    m = Manifest(fmt="base", nranks=2, value_bytes=8)
    m.add_epoch(_info(0))
    with pytest.raises(ValueError):
        m.add_epoch(_info(0))


def test_malformed_blob_rejected():
    with pytest.raises(ValueError):
        Manifest.from_bytes(b"not json at all {{{")
    with pytest.raises(ValueError):
        Manifest.from_bytes(b'{"version": 99}')
