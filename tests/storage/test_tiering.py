"""Tests for the two-tier burst-buffer drain model."""

import pytest

from repro.storage.tiering import BurstReport, TierConfig, TieredStorage


def make(capacity=100.0, ingest=10.0, drain=2.0):
    return TieredStorage(TierConfig(capacity, ingest, drain))


def test_small_burst_absorbed_at_ingest_speed():
    t = make()
    r = t.write_burst(50.0)
    assert r.absorb_time == pytest.approx(5.0)  # 50 B at 10 B/s
    assert not r.throttled
    # 10 B drained during absorption; 40 left → 20 s more to queryable.
    assert r.drain_lag == pytest.approx(20.0)
    assert t.bb_occupancy == pytest.approx(40.0)


def test_burst_larger_than_bb_throttles():
    t = make(capacity=20.0, ingest=10.0, drain=2.0)
    r = t.write_burst(100.0)
    assert r.throttled
    # Fill phase: 20/(10-2)=2.5 s absorbs 25 B; remaining 75 B at drain
    # speed (2 B/s) → 37.5 s more.
    assert r.absorb_time == pytest.approx(2.5 + 37.5)


def test_idle_drains():
    t = make()
    t.write_burst(50.0)
    occ = t.bb_occupancy
    t.idle(5.0)
    assert t.bb_occupancy == pytest.approx(occ - 10.0)
    t.idle(1000.0)
    assert t.bb_occupancy == 0.0


def test_back_to_back_bursts_accumulate():
    t = make(capacity=1000.0)
    r1 = t.write_burst(50.0)
    r2 = t.write_burst(50.0)
    assert r2.t_start == pytest.approx(r1.t_absorbed)
    assert t.bb_occupancy > 40.0  # both bursts' residue stacked


def test_compute_phase_between_dumps_hides_drain():
    """The paper's pattern: if the compute phase exceeds the drain lag,
    the PFS write is free (hidden behind simulation time)."""
    t = make()
    r = t.write_burst(50.0)
    t.idle(r.drain_lag + 1.0)
    assert t.bb_occupancy == 0.0
    r2 = t.write_burst(50.0)
    assert not r2.throttled
    assert r2.absorb_time == pytest.approx(5.0)


def test_queryable_after():
    t = make()
    t.write_burst(50.0)
    assert t.queryable_after() == pytest.approx(t.now + t.bb_occupancy / 2.0)


def test_conservation():
    t = make(capacity=30.0, ingest=8.0, drain=3.0)
    t.write_burst(70.0)
    t.idle(100.0)
    assert t.drained_total == pytest.approx(70.0, rel=1e-6)


def test_validation():
    with pytest.raises(ValueError):
        TierConfig(0, 1, 1)
    with pytest.raises(ValueError):
        TierConfig(1, 0, 1)
    t = make()
    with pytest.raises(ValueError):
        t.write_burst(0)
    with pytest.raises(ValueError):
        t.idle(-1)


def test_report_fields():
    r = BurstReport(0.0, 2.0, 5.0, False)
    assert r.absorb_time == 2.0 and r.drain_lag == 3.0
