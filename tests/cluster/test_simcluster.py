"""Integration-grade tests for the simulated cluster (exact accounting)."""

import numpy as np
import pytest

from repro.cluster.simcluster import SimCluster
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import random_kv_batch


def run(fmt, nranks=8, records=1500, value_bytes=56, **kw):
    cluster = SimCluster(
        nranks=nranks,
        fmt=fmt,
        value_bytes=value_bytes,
        records_hint=nranks * records,
        seed=11,
        **kw,
    )
    stats = cluster.run_epoch(records)
    return cluster, stats


def test_base_shuffle_bytes_exact():
    _, st = run(FMT_BASE)
    # Base ships whole 64-byte records; 7/8 of data leaves its producer.
    assert st.shuffle_bytes_per_record == pytest.approx(64 * 7 / 8, rel=0.02)


def test_dataptr_shuffle_bytes_exact():
    _, st = run(FMT_DATAPTR)
    assert st.shuffle_bytes_per_record == pytest.approx(16 * 7 / 8, rel=0.02)


def test_filterkv_shuffle_bytes_exact():
    _, st = run(FMT_FILTERKV)
    assert st.shuffle_bytes_per_record == pytest.approx(8 * 7 / 8, rel=0.02)


def test_message_count_ordering():
    # Enough volume that every format fills multiple 16 KB batches per peer.
    msgs = {}
    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        _, st = run(fmt, records=20_000)
        msgs[fmt.name] = st.rpc_messages
    assert msgs["filterkv"] < msgs["dataptr"] < msgs["base"]
    # Counts scale with payload bytes: base ships ~4× dataptr, ~8× filterkv.
    # (end-of-burst flushes add a fixed per-peer message to every format)
    assert msgs["base"] > 2.5 * msgs["dataptr"]
    assert msgs["base"] > 4 * msgs["filterkv"]


def test_storage_ordering_matches_formats():
    per = {}
    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        _, st = run(fmt)
        per[fmt.name] = st.storage_bytes_per_record
    # DataPtr writes the most (values + keys + 12 B pointers); base least.
    assert per["base"] < per["filterkv"] < per["dataptr"]


def test_filterkv_aux_tiny_relative_to_pointers():
    _, st_f = run(FMT_FILTERKV)
    aux_per_key = st_f.aux_bytes / st_f.records
    assert aux_per_key < 2.0  # ~0.9-1.3 B at 8 partitions vs 12 B pointers


def test_all_records_arrive_somewhere():
    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        cluster, st = run(fmt)
        assert st.records == 8 * 1500
        received = sum(r.records_received for r in cluster.receivers)
        assert received == st.records


def test_query_roundtrip_all_formats():
    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        cluster, _ = run(fmt)
        engine = cluster.query_engine()
        rng = np.random.default_rng(11)  # regenerate rank 0's first batch
        batch = random_kv_batch(1500, 56, rng)
        for i in (0, 100, 777):
            value, qs = engine.get(int(batch.keys[i]))
            assert qs.found, f"{fmt.name}: key {i} not found"
            assert value == batch.value_of(i)


def test_query_absent_key():
    cluster, _ = run(FMT_FILTERKV)
    engine = cluster.query_engine()
    value, qs = engine.get(0xDEAD_BEEF_0BAD)
    assert value is None
    assert not qs.found


def test_filterkv_query_reads_aux_then_partitions():
    cluster, _ = run(FMT_FILTERKV)
    engine = cluster.query_engine()
    rng = np.random.default_rng(11)
    batch = random_kv_batch(1500, 56, rng)
    _, qs = engine.get(int(batch.keys[3]))
    assert qs.breakdown_reads.get("aux") == 1
    assert qs.partitions_searched >= 1
    assert qs.breakdown_reads.get("footer", 0) == qs.partitions_searched


def test_dataptr_query_has_vlog_read():
    cluster, _ = run(FMT_DATAPTR)
    engine = cluster.query_engine()
    rng = np.random.default_rng(11)
    batch = random_kv_batch(1500, 56, rng)
    _, qs = engine.get(int(batch.keys[9]))
    assert qs.breakdown_reads.get("vlog") == 1


def test_latency_ordering_fig11a():
    """Median latency: base < dataptr < filterkv (Fig. 11a)."""
    lat = {}
    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        cluster, _ = run(fmt, records=2500)
        engine = cluster.query_engine()
        rng = np.random.default_rng(11)
        batch = random_kv_batch(2500, 56, rng)
        ls = [engine.get(int(k))[1].latency for k in batch.keys[:40]]
        lat[fmt.name] = float(np.median(ls))
    assert lat["base"] < lat["dataptr"] < lat["filterkv"]


def test_rejects_single_rank():
    with pytest.raises(ValueError):
        SimCluster(nranks=1)


def test_stats_before_finish_rejected():
    cluster = SimCluster(nranks=2, fmt=FMT_BASE, value_bytes=8)
    with pytest.raises(ValueError):
        cluster.stats
    with pytest.raises(ValueError):
        cluster.query_engine()


def test_double_finish_rejected():
    cluster = SimCluster(nranks=2, fmt=FMT_BASE, value_bytes=8)
    cluster.finish_epoch()
    with pytest.raises(ValueError):
        cluster.finish_epoch()


def test_pipeline_rejects_wrong_value_width():
    cluster = SimCluster(nranks=2, fmt=FMT_BASE, value_bytes=8)
    with pytest.raises(ValueError):
        cluster.put(0, random_kv_batch(10, 16))
