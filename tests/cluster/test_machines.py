"""Unit tests for machine configs and burst-buffer allocations."""

import pytest

from repro.cluster.burstbuffer import FIG10_RATIOS, BurstBufferAllocation
from repro.cluster.machines import MACHINES, NARWHAL, TRINITY_HASWELL, TRINITY_KNL


def test_machine_inventory():
    assert {"narwhal", "trinity-haswell", "trinity-knl", "theta-knl"} <= set(MACHINES)


def test_narwhal_matches_paper():
    assert NARWHAL.ppn == 4  # 4 CPU cores per node (§V-A)
    assert NARWHAL.transport.link_bandwidth_gbps == 1.0  # 1000 Mbps NIC
    assert NARWHAL.nnodes_for(640) == 160  # 640 procs on 160 nodes


def test_trinity_partitions_match_paper():
    assert TRINITY_HASWELL.cpu.cores_per_node == 32
    assert TRINITY_KNL.cpu.cores_per_node == 68
    assert TRINITY_KNL.cpu.slowdown > TRINITY_HASWELL.cpu.slowdown


def test_with_transport_swaps_only_transport():
    tcp = TRINITY_KNL.with_transport("tcp")
    assert tcp.transport.name == "tcp"
    assert tcp.cpu == TRINITY_KNL.cpu
    assert "tcp" in tcp.name


def test_with_storage_bandwidth():
    m = NARWHAL.with_storage_bandwidth(42.0)
    assert m.storage_bw_per_node == 42.0
    assert m.name == NARWHAL.name


def test_machine_validation():
    with pytest.raises(ValueError):
        NARWHAL.with_storage_bandwidth(0)


def test_bb_allocation_matches_fig10_axis():
    """32:1 → ~11 GB/s, 12:1 → ~28-29 GB/s at 64 compute nodes (Fig. 10)."""
    expected = {32.0: 11e9, 20.0: 17.6e9, 16.0: 22e9, 12.0: 29.3e9}
    for ratio in FIG10_RATIOS:
        alloc = BurstBufferAllocation(compute_nodes=64, ratio=ratio)
        assert alloc.aggregate_bandwidth == pytest.approx(expected[ratio], rel=0.02)


def test_bb_per_node_bandwidth():
    alloc = BurstBufferAllocation(compute_nodes=64, ratio=32.0)
    assert alloc.bandwidth_per_compute_node == pytest.approx(11e9 / 64, rel=0.01)
    assert alloc.bb_nodes == 2.0


def test_bb_validation():
    with pytest.raises(ValueError):
        BurstBufferAllocation(compute_nodes=0, ratio=32)
    with pytest.raises(ValueError):
        BurstBufferAllocation(compute_nodes=64, ratio=0)
