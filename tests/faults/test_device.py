"""Per-kind trigger tests for the fault-injecting storage device.

Each fault kind is armed, demonstrably fires (observable damage or
exception), and is counted under ``faults.injected{kind=...}`` in the
obs registry — the acceptance check that injection is real, not skipped.
"""

import pytest

from repro.faults import CrashPoint, FaultPlan, FaultyStorageDevice
from repro.obs import MetricsRegistry
from repro.storage.blockio import ExtentLostError


def _device(plan):
    metrics = MetricsRegistry()
    return FaultyStorageDevice(plan, metrics=metrics), metrics


def _injected(metrics, kind):
    return metrics.counter("faults.injected", kind=kind).value


def test_no_plan_behaves_like_plain_device():
    dev = FaultyStorageDevice()
    f = dev.open("x", create=True)
    f.append(b"hello")
    assert f.read(0, 5) == b"hello"
    assert dev.op_index == 2
    assert not dev.crashed


def test_crash_halts_io_until_revive():
    dev, metrics = _device(FaultPlan(seed=1).crash_at(1))
    f = dev.open("x", create=True)
    f.append(b"aaaa")
    with pytest.raises(CrashPoint):
        f.append(b"bbbb")
    assert dev.crashed
    with pytest.raises(CrashPoint):
        f.read(0, 4)  # everything fails while down
    dev.revive()
    assert f.read(0, 8) == b"aaaa"  # pre-crash bytes intact, crash op never landed
    assert _injected(metrics, "crash") == 1
    assert metrics.counter("faults.crashes").value == 1


def test_torn_append_keeps_prefix_and_crashes():
    dev, metrics = _device(FaultPlan(seed=2).torn_append_at(1, fraction=0.25))
    f = dev.open("x", create=True)
    f.append(b"A" * 100)
    with pytest.raises(CrashPoint):
        f.append(b"B" * 100)
    dev.revive()
    assert dev.file_size("x") == 125  # first append whole + 25 B of the torn one
    assert f.read(0, 200) == b"A" * 100 + b"B" * 25
    assert _injected(metrics, "torn_append") == 1


def test_bit_flip_on_append_damages_exactly_one_bit():
    dev, metrics = _device(FaultPlan(seed=3).bit_flip_at(0, pattern="x"))
    f = dev.open("x", create=True)
    f.append(bytes(64))
    got = f.read(0, 64)
    set_bits = sum(bin(b).count("1") for b in got)
    assert set_bits == 1
    assert _injected(metrics, "bit_flip") == 1


def test_bit_flip_on_read_hits_the_read_range():
    plan = FaultPlan(seed=4).bit_flip_at(1, pattern="x")
    dev, metrics = _device(plan)
    f = dev.open("x", create=True)
    f.append(bytes(32))  # op 0: clean
    damaged = f.read(8, 8)  # op 1: flip lands inside [8, 16)
    assert sum(bin(b).count("1") for b in damaged) == 1
    rest = f.read(0, 8) + f.read(16, 16)
    assert rest == bytes(24)  # damage confined to the targeted range
    assert _injected(metrics, "bit_flip") == 1


def test_drop_extent_loses_the_file():
    dev, metrics = _device(FaultPlan(seed=5).drop_extent_at(1, pattern="x"))
    f = dev.open("x", create=True)
    f.append(b"data")
    f.append(b"more")  # fires after this op completes
    assert not dev.exists("x")
    with pytest.raises(ExtentLostError):
        f.read(0, 4)
    assert _injected(metrics, "drop_extent") == 1


def test_io_error_fails_op_but_device_survives():
    dev, metrics = _device(FaultPlan(seed=6).io_error_at(1))
    f = dev.open("x", create=True)
    f.append(b"keep")
    with pytest.raises(OSError):
        f.append(b"lost")
    assert not dev.crashed
    f.append(b"next")  # retry path: device still works
    assert f.read(0, 8) == b"keepnext"
    assert _injected(metrics, "io_error") == 1


def test_faults_respect_extent_patterns():
    plan = FaultPlan(seed=7).crash_at(0, pattern="part.*")
    dev, _ = _device(plan)
    v = dev.open("vlog.000000", create=True)
    v.append(b"v" * 10)  # does not match, no crash
    p = dev.open("part.000.000000", create=True)
    with pytest.raises(CrashPoint):
        p.append(b"p" * 10)


def test_same_seed_same_damage():
    def run(seed):
        dev, _ = _device(FaultPlan(seed=seed).bit_flip_at(0).torn_append_at(1))
        f = dev.open("x", create=True)
        f.append(bytes(range(256)))
        try:
            f.append(bytes(range(256)))
        except CrashPoint:
            pass
        dev.revive()
        return f.read(0, dev.file_size("x"))

    assert run(11) == run(11)
    assert run(11) != run(12)
