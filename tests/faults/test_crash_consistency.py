"""Randomized crash/corruption harness — the crash-consistency contract.

Hundreds of seeded trials, each fully deterministic from its seed:

* **crash trials** — run a multi-epoch workload, crash at a seeded random
  device operation, recover, and assert that every epoch the manifest
  committed is fully readable with correct values while every epoch the
  crash interrupted is cleanly absent from storage;
* **corruption trials** — flip one seeded random bit at rest and assert
  the damage is *detected* (`CorruptBlockError` / a failed seal), never
  served as silently wrong data.

Each trial is small (2 ranks, tens of records) so the whole harness runs
in seconds; the `FAULT_SEED_OFFSET` environment knob lets CI sweep extra
disjoint seed windows without editing the test.
"""

import os

import numpy as np
import pytest

from repro.cluster.simcluster import SimCluster
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.multiepoch import MultiEpochStore
from repro.core.pipeline import main_table_name
from repro.faults import CrashPoint, FaultPlan, FaultyStorageDevice
from repro.obs import MetricsRegistry
from repro.storage.blockio import StorageDevice
from repro.storage.envelope import SealError
from repro.storage.sstable import CorruptBlockError, SSTableReader

NRANKS = 2
RECORDS = 60  # per rank per epoch
EPOCHS = 2
VALUE_BYTES = 16
SEED_OFFSET = int(os.environ.get("FAULT_SEED_OFFSET", "0"))


def _write_until_crash(store, device, seed):
    """Drive EPOCHS epochs; returns per-epoch expected mappings for the
    epochs that committed before the (possible) crash."""
    rng = np.random.default_rng(seed)
    crash_op = int(rng.integers(0, 400))
    device.plan.crash_at(crash_op)
    expected = []
    for _ in range(EPOCHS):
        batches = [random_kv_batch(RECORDS, VALUE_BYTES, rng) for _ in range(NRANKS)]
        try:
            store.write_epoch(batches)
        except CrashPoint:
            break
        epoch_map = {}
        for b in batches:
            for i in range(len(b)):
                epoch_map[int(b.keys[i])] = b.values[i].tobytes()
        expected.append(epoch_map)
    # Disarm anything unfired so recovery and verification run fault-free.
    device.plan.specs = [s for s in device.plan.specs if s.fired]
    return expected


def _verify_epoch(store, device, fmt, epoch, exp):
    """The committed-epoch contract: complete, and correct where checked."""
    keys = sorted(exp)
    for k in keys[:: max(1, len(keys) // 24)]:
        value, _ = store.get(k, epoch)
        assert value == exp[k], f"epoch {epoch} key {k} wrong/missing after recovery"
    # Completeness: every written key is present in the epoch's tables
    # (and for the formats that store values inline, byte-correct).
    got = {}
    for rank in range(NRANKS):
        reader = SSTableReader(device, main_table_name(epoch, rank))
        got.update(reader.scan())
    assert set(got) == set(exp), f"epoch {epoch} key set differs after recovery"
    if fmt.name in ("base", "filterkv"):
        assert all(got[k] == exp[k] for k in exp), f"epoch {epoch} values differ"


def _assert_uncommitted_absent(device, committed):
    for e in range(EPOCHS):
        if e in committed:
            continue
        leftovers = [
            n
            for n in device.list_files()
            if n.startswith((f"part.{e:03d}.", f"aux.{e:03d}.", f"runs.{e:03d}."))
        ]
        assert not leftovers, f"uncommitted epoch {e} left extents: {leftovers}"


def _crash_trial(seed, fmt, metrics):
    device = FaultyStorageDevice(FaultPlan(seed=seed), metrics=metrics)
    store = MultiEpochStore(
        nranks=NRANKS, fmt=fmt, value_bytes=VALUE_BYTES, device=device, seed=seed
    )
    expected = _write_until_crash(store, device, seed)
    recovered, report = MultiEpochStore.recover(device, metrics=metrics)
    assert report.committed_epochs == list(range(len(expected))), (
        f"seed {seed}: committed {report.committed_epochs}, "
        f"but {len(expected)} epochs completed before the crash"
    )
    for e, exp in enumerate(expected):
        _verify_epoch(recovered, device, fmt, e, exp)
    _assert_uncommitted_absent(device, report.committed_epochs)
    return len(expected)


@pytest.mark.parametrize(
    "fmt,nseeds",
    [
        # Quick params run in every tier-1 invocation; the full sweeps are
        # marked slow and run in CI's faults job (-m "slow or not slow").
        (FMT_FILTERKV, 12),
        (FMT_BASE, 6),
        (FMT_DATAPTR, 6),
        pytest.param(FMT_FILTERKV, 100, marks=pytest.mark.slow),
        pytest.param(FMT_BASE, 50, marks=pytest.mark.slow),
        pytest.param(FMT_DATAPTR, 50, marks=pytest.mark.slow),
    ],
    ids=["filterkv-12", "base-6", "dataptr-6", "filterkv-100", "base-50", "dataptr-50"],
)
def test_crash_recovery_trials(fmt, nseeds):
    metrics = MetricsRegistry()
    committed_counts = [
        _crash_trial(SEED_OFFSET + seed, fmt, metrics) for seed in range(nseeds)
    ]
    assert metrics.counter("recovery.runs").value == nseeds
    # Only ~5% of seeds place the crash inside the run, so both-outcomes
    # coverage is a property of the full sweeps; the quick params just
    # smoke the recovery contract on whatever their window contains.
    if nseeds >= 50:
        assert any(c < EPOCHS for c in committed_counts), "no trial ever crashed"
        assert metrics.counter("faults.crashes").value > 0
        assert metrics.counter("faults.injected", kind="crash").value > 0


def test_corruption_is_detected_never_silent():
    detected = 0
    for seed in range(SEED_OFFSET, SEED_OFFSET + 30):
        rng = np.random.default_rng(seed ^ 0xC0DE)
        device = StorageDevice()
        store = MultiEpochStore(
            nranks=NRANKS, fmt=FMT_FILTERKV, value_bytes=VALUE_BYTES, device=device, seed=seed
        )
        batches = [random_kv_batch(RECORDS, VALUE_BYTES, rng) for _ in range(NRANKS)]
        store.write_epoch(batches)
        exp = {
            int(b.keys[i]): b.values[i].tobytes() for b in batches for i in range(len(b))
        }
        victims = [n for n in device.list_files() if n.startswith(("part.", "aux."))]
        name = victims[int(rng.integers(len(victims)))]
        offset = int(rng.integers(device.file_size(name)))
        device.corrupt(name, offset, xor=1 << int(rng.integers(8)))
        try:
            att = MultiEpochStore.attach(device)
        except (SealError, CorruptBlockError, ValueError):
            detected += 1  # caught while reloading aux/index structures
            continue
        for k in sorted(exp)[:: max(1, len(exp) // 40)]:
            try:
                value, _ = att.get(k, 0)
            except CorruptBlockError:
                detected += 1
                break
            assert value == exp[k], (
                f"seed {seed}: corruption in {name!r} at {offset} served "
                f"silently-wrong data for key {k}"
            )
    # Single-bit flips land in checksummed structures; the overwhelming
    # majority must be caught (a flip in an unread block can hide).
    assert detected >= 20, f"only {detected}/30 corruptions detected"


def test_deep_recovery_quarantines_data_block_corruption():
    device = StorageDevice()
    store = MultiEpochStore(
        nranks=NRANKS, fmt=FMT_FILTERKV, value_bytes=VALUE_BYTES, device=device, seed=0
    )
    rng = np.random.default_rng(0)
    for _ in range(2):
        store.write_epoch([random_kv_batch(RECORDS, VALUE_BYTES, rng) for _ in range(NRANKS)])
    victim = main_table_name(0, 0)
    device.corrupt(victim, 10, xor=0x10)  # inside the first data block
    metrics = MetricsRegistry()
    recovered, report = MultiEpochStore.recover(device, deep=True, metrics=metrics)
    assert [e for e, _ in report.quarantined_epochs] == [0]
    assert report.committed_epochs == [1]
    assert not any(n.startswith("part.000.") for n in device.list_files())
    assert metrics.counter("recovery.epochs_quarantined").value == 1


def test_simcluster_crash_recover_rerun():
    metrics = MetricsRegistry()
    cluster = SimCluster(
        nranks=3,
        fmt=FMT_FILTERKV,
        value_bytes=VALUE_BYTES,
        seed=4,
        faults=FaultPlan(seed=4),
        metrics=metrics,
    )
    cluster.crash_at(7)
    with pytest.raises(CrashPoint):
        cluster.run_epoch(200)
    report = cluster.recover()
    assert report.committed_epochs == []
    # The partial epoch was swept; the fresh writer states built by
    # recover() start their output extents over from zero bytes.
    assert len(report.orphans_removed) >= 3
    assert all(cluster.device.file_size(n) == 0 for n in cluster.device.list_files())
    stats = cluster.run_epoch(200)
    assert stats.records == 600
    engine = cluster.query_engine()
    keys = random_kv_batch(8, VALUE_BYTES, np.random.default_rng(4)).keys
    assert all(engine.get(int(k))[0] is not None for k in keys)
    assert metrics.counter("faults.crashes").value == 1


def test_torn_manifest_commit_reverts_to_previous_epoch_set():
    # Crash exactly on the manifest append of epoch 1: epoch 0's manifest
    # generation must win and epoch 1 must vanish on recovery.
    device = FaultyStorageDevice(FaultPlan(seed=1))
    store = MultiEpochStore(
        nranks=NRANKS, fmt=FMT_BASE, value_bytes=VALUE_BYTES, device=device, seed=1
    )
    rng = np.random.default_rng(1)
    store.write_epoch([random_kv_batch(RECORDS, VALUE_BYTES, rng) for _ in range(NRANKS)])
    device.plan.torn_append_at(device.op_index, pattern="MANIFEST.*", fraction=0.5)
    with pytest.raises(CrashPoint):
        store.write_epoch([random_kv_batch(RECORDS, VALUE_BYTES, rng) for _ in range(NRANKS)])
    recovered, report = MultiEpochStore.recover(device)
    assert report.committed_epochs == [0]
    assert any("MANIFEST" in n for n in report.invalid_manifests)
    _assert_uncommitted_absent(device, [0])
