"""Crash consistency for online compaction — the atomic-swap contract.

A compaction interrupted at *any* point must leave the dataset in exactly
one of two states after recovery:

* **pre-compaction** — every source epoch still live and byte-correct,
  with the partial merge output swept as orphans; or
* **post-compaction** — the merged epoch live, sources gone, answers
  byte-identical to the pre-compaction view.

Never anything in between: no torn manifest interpreted, no half-merged
epoch served, no source extent missing while its epoch is still live.
Targeted trials pin the crash to each phase of the run (merge writes, aux
seal, manifest swap); the seeded sweep scatters crashes across random
device-op offsets, `FAULT_SEED_OFFSET` widening the window in CI.
"""

import os

import numpy as np
import pytest

from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import KVBatch
from repro.core.multiepoch import MultiEpochStore
from repro.faults import CrashPoint, FaultPlan, FaultyStorageDevice
from repro.obs import MetricsRegistry

ALL_FORMATS = [FMT_BASE, FMT_DATAPTR, FMT_FILTERKV]
NRANKS = 2
RECORDS = 50  # per rank per epoch
EPOCHS = 3
VALUE_BYTES = 16
SEED_OFFSET = int(os.environ.get("FAULT_SEED_OFFSET", "0"))


@pytest.fixture(params=ALL_FORMATS, ids=lambda f: f.name)
def fmt(request):
    return request.param


def _build(fmt, seed):
    """A committed multi-epoch dataset on a faulty device (no faults armed
    yet).  Returns ``(store, device, truth)`` with newest-wins truth."""
    device = FaultyStorageDevice(FaultPlan(seed=seed))
    store = MultiEpochStore(
        nranks=NRANKS, fmt=fmt, value_bytes=VALUE_BYTES, device=device, seed=seed
    )
    rng = np.random.default_rng(seed)
    truth: dict[int, bytes] = {}
    prev = None
    for _ in range(EPOCHS):
        keys = np.unique(
            rng.integers(0, 2**63, size=RECORDS * NRANKS, dtype=np.uint64)
        )
        if prev is not None:  # a third of each dump rewrites older keys
            k = keys.size // 3
            keys[:k] = rng.choice(prev, size=k, replace=False)
            keys = np.unique(keys)
        rng.shuffle(keys)
        values = rng.integers(0, 256, size=(keys.size, VALUE_BYTES), dtype=np.uint8)
        splits = np.array_split(np.arange(keys.size), NRANKS)
        store.write_epoch([KVBatch(keys[s], values[s]) for s in splits])
        prev = keys.copy()
        for key, value in zip(keys.tolist(), values):
            truth[int(key)] = bytes(value)
    return store, device, truth


def _assert_pre_or_post(device, truth, sources, merged, metrics=None):
    """Recover and enforce the all-or-nothing contract; returns the
    recovered store (in whichever of the two states survived)."""
    recovered, report = MultiEpochStore.recover(device, metrics=metrics)
    assert recovered is not None, "a compaction crash lost the committed dataset"
    live = recovered.epochs
    if merged in live:
        assert live == [merged], f"merged epoch coexists with sources: {live}"
        for src in sources:
            assert recovered.resolve_epoch(src) == merged
    else:
        assert live == sources, f"neither pre nor post compaction state: {live}"
        # The interrupted merge's output is gone — recovery swept it.
        leftovers = [
            n
            for n in device.list_files()
            if n.startswith((f"part.{merged:03d}.", f"aux.{merged:03d}."))
        ]
        assert not leftovers, f"partial merge output survived: {leftovers}"
    # Either way, every answer is byte-identical to the pre-crash view.
    keys = sorted(truth)
    for k in keys[:: max(1, len(keys) // 32)]:
        value, _, _ = recovered.lookup(k)
        assert value == truth[k], f"key {k} wrong after crashed compaction"
    recovered.close()
    return recovered


def _crashed_compaction_trial(fmt, seed, arm):
    """One deterministic trial: build, arm a fault via ``arm(device,
    merged)``, compact (maybe crashing), recover, check the contract,
    then prove the dataset is still compactable."""
    store, device, truth = _build(fmt, seed)
    sources = list(store.epochs)
    merged = store.manifest.next_epoch
    crashed = arm(device, merged)
    try:
        store.compact()
        crashed = False
    except CrashPoint:
        pass
    store.close()
    # Disarm unfired faults so recovery and re-compaction run fault-free.
    device.plan.specs = [s for s in device.plan.specs if s.fired]
    recovered = _assert_pre_or_post(device, truth, sources, merged)
    if recovered.epochs != [merged]:
        # Pre-state: the dataset must accept a clean retry.
        retry = MultiEpochStore.attach(device)
        report = retry.compact()
        assert report is not None and retry.epochs == [report.merged_epoch]
        for k in sorted(truth)[:: max(1, len(truth) // 16)]:
            assert retry.lookup(k)[0] == truth[k]
        retry.close()
    return crashed


# -- targeted crash points -------------------------------------------------


def test_crash_mid_merge_write(fmt):
    """Crash on the first append to the merged epoch's own tables."""
    crashed = _crashed_compaction_trial(
        fmt,
        SEED_OFFSET + 1,
        lambda device, merged: device.plan.crash_at(0, pattern=f"part.{merged:03d}.*")
        or True,
    )
    assert crashed, "the merge never touched the merged epoch's tables"


def test_crash_mid_aux_seal():
    """FilterKV only: crash while sealing the rebuilt aux blobs."""
    crashed = _crashed_compaction_trial(
        FMT_FILTERKV,
        SEED_OFFSET + 2,
        lambda device, merged: device.plan.crash_at(0, pattern=f"aux.{merged:03d}.*")
        or True,
    )
    assert crashed, "the merge never sealed an aux blob"


def test_crash_on_manifest_swap(fmt):
    """Crash on the swap itself: the old generation must win."""
    store, device, truth = _build(fmt, SEED_OFFSET + 3)
    sources = list(store.epochs)
    merged = store.manifest.next_epoch
    device.plan.crash_at(0, pattern="MANIFEST.*")
    with pytest.raises(CrashPoint):
        store.compact()
    store.close()
    device.plan.specs = [s for s in device.plan.specs if s.fired]
    recovered = _assert_pre_or_post(device, truth, sources, merged)
    assert recovered.epochs == sources, "a crashed swap must revert to the sources"


def test_torn_manifest_swap_reverts(fmt):
    """The swap append itself tears mid-write: the sealed-envelope check
    must discard it and the previous generation must win."""
    store, device, truth = _build(fmt, SEED_OFFSET + 4)
    sources = list(store.epochs)
    merged = store.manifest.next_epoch
    device.plan.torn_append_at(0, pattern="MANIFEST.*", fraction=0.5)
    with pytest.raises(CrashPoint):
        store.compact()
    store.close()
    device.plan.specs = [s for s in device.plan.specs if s.fired]
    recovered = _assert_pre_or_post(device, truth, sources, merged)
    assert recovered.epochs == sources


# -- seeded random sweep ---------------------------------------------------


@pytest.mark.parametrize(
    "nseeds",
    [
        6,
        pytest.param(40, marks=pytest.mark.slow),
    ],
    ids=["quick-6", "sweep-40"],
)
def test_compaction_crash_sweep(fmt, nseeds):
    """Crashes scattered across random charged-op offsets of the run."""
    metrics = MetricsRegistry()
    crashed_any = completed_any = False
    for seed in range(SEED_OFFSET + 10, SEED_OFFSET + 10 + nseeds):
        rng = np.random.default_rng(seed ^ 0xFACE)

        def arm(device, merged, rng=rng):
            device.plan.crash_at(device.op_index + int(rng.integers(1, 300)))
            return True

        crashed = _crashed_compaction_trial(fmt, seed, arm)
        crashed_any |= crashed
        completed_any |= not crashed
    # Both outcomes must appear across the window for real coverage; the
    # quick run asserts the weaker property (every trial consistent).
    if nseeds >= 40:
        assert crashed_any, "no sweep trial crashed inside the compaction"
        assert completed_any, "every sweep trial crashed before completing"
