"""Unit tests for deterministic fault plans."""

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec


def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec("meteor_strike")
    with pytest.raises(ValueError):
        FaultSpec("crash", op=-1)


def test_spec_eligibility_by_op_and_pattern():
    s = FaultSpec("crash", op=5, pattern="part.*")
    assert not s.eligible(4, "part.000.000000", "append")  # too early
    assert not s.eligible(5, "vlog.000000", "append")  # wrong extent
    assert s.eligible(5, "part.000.000000", "append")
    assert s.eligible(9, "part.000.000001", "read")  # >= op, any later op


def test_torn_append_never_fires_on_read():
    s = FaultSpec("torn_append", op=0)
    assert not s.eligible(3, "x", "read")
    assert s.eligible(3, "x", "append")


def test_take_is_one_shot_and_ordered():
    plan = FaultPlan(seed=1).io_error_at(0).crash_at(0)
    first = plan.take(0, "x", "append")
    assert first.kind == "io_error" and first.fired_at == 0
    second = plan.take(1, "x", "append")
    assert second.kind == "crash"
    assert plan.take(2, "x", "append") is None
    assert [s.kind for s in plan.fired] == ["io_error", "crash"]
    assert plan.unfired == []


def test_fluent_helpers_arm_all_kinds():
    plan = (
        FaultPlan(seed=0)
        .crash_at(1)
        .torn_append_at(2)
        .bit_flip_at(3)
        .drop_extent_at(4)
        .io_error_at(5)
    )
    assert [s.kind for s in plan.specs] == [
        "crash",
        "torn_append",
        "bit_flip",
        "drop_extent",
        "io_error",
    ]
    assert sorted(s.kind for s in plan.specs) == sorted(FAULT_KINDS)
    assert len(plan) == 5


def test_random_plan_is_reproducible():
    a = FaultPlan.random(seed=7, max_op=100, nfaults=5)
    b = FaultPlan.random(seed=7, max_op=100, nfaults=5)
    assert [(s.kind, s.op) for s in a.specs] == [(s.kind, s.op) for s in b.specs]
    c = FaultPlan.random(seed=8, max_op=100, nfaults=5)
    assert [(s.kind, s.op) for s in a.specs] != [(s.kind, s.op) for s in c.specs]
    with pytest.raises(ValueError):
        FaultPlan.random(seed=0, max_op=0)


def test_rng_for_is_stable_per_op():
    plan = FaultPlan(seed=3)
    assert plan.rng_for(9).integers(1 << 30) == plan.rng_for(9).integers(1 << 30)
    assert plan.rng_for(9).integers(1 << 30) != plan.rng_for(10).integers(1 << 30)
