"""Telemetry invariants over real cluster runs.

These tie the registry's counters to ground truth the paper states
analytically: FilterKV ships exactly the 8-byte key per record, DataPtr
ships key + 8-byte pointer (16 B/record), and every candidate rank the
reader probes was reported by the auxiliary table.
"""

import numpy as np
import pytest

from repro.cluster import SimCluster
from repro.core import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.obs import MetricsRegistry

RANKS = 4
RECORDS = 800


def _run(fmt, value_bytes=24, queries=0):
    reg = MetricsRegistry(fmt.name)
    cluster = SimCluster(
        nranks=RANKS,
        fmt=fmt,
        value_bytes=value_bytes,
        records_hint=RANKS * RECORDS,
        seed=7,
        metrics=reg,
    )
    batches = [random_kv_batch(RECORDS, value_bytes, np.random.default_rng(50 + r)) for r in range(RANKS)]
    for rank, batch in enumerate(batches):
        cluster.put(rank, batch)
    cluster.finish_epoch()
    engine = cluster.query_engine() if queries else None
    for i in range(queries):
        engine.get(int(batches[i % RANKS].keys[i % RECORDS]))
    return reg, cluster


def test_filterkv_wire_bytes_are_8_per_record():
    reg, _ = _run(FMT_FILTERKV)
    records = RANKS * RECORDS
    assert reg.total("pipeline.records_encoded") == records
    assert reg.total("pipeline.wire_bytes", format="filterkv") == 8 * records


def test_dataptr_wire_bytes_are_16_per_record():
    reg, _ = _run(FMT_DATAPTR)
    records = RANKS * RECORDS
    assert reg.total("pipeline.wire_bytes", format="dataptr") == 16 * records


def test_base_wire_bytes_carry_full_kv():
    reg, _ = _run(FMT_BASE, value_bytes=24)
    records = RANKS * RECORDS
    assert reg.total("pipeline.wire_bytes", format="base") == (8 + 24) * records


def test_encoded_equals_decoded_everywhere():
    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        reg, _ = _run(fmt)
        assert reg.total("pipeline.records_encoded") == reg.total("pipeline.records_decoded")
        assert reg.total("pipeline.batches_shipped") == reg.total("pipeline.batches_received")


def test_reader_candidates_match_aux_reported_candidates():
    reg, _ = _run(FMT_FILTERKV, queries=120)
    queries = reg.total("reader.queries")
    assert queries == 120
    # Every candidate the reader saw came from an aux-table probe, 1:1.
    assert reg.total("reader.candidates") == reg.total("aux.candidates")
    assert reg.total("aux.probes") == queries
    # The reader stops probing once it finds the key, so partitions probed
    # never exceed the candidates offered and never miss (all keys exist).
    assert reg.total("reader.partitions_probed") <= reg.total("reader.candidates")
    assert reg.total("reader.hits") == queries
    amp = reg.histogram("reader.read_amplification", format="filterkv")
    assert amp.count == queries
    assert amp.min >= 1.0


def test_storage_counters_track_device():
    reg, cluster = _run(FMT_FILTERKV)
    assert reg.total("storage.bytes_written") == cluster.device.counters.bytes_written
    assert reg.total("storage.writes") == cluster.device.counters.writes


def test_aux_structure_gauges_recorded():
    reg, cluster = _run(FMT_FILTERKV)
    records = RANKS * RECORDS
    keys = sum(
        reg.gauge("aux.keys", backend="cuckoo", rank=str(r)).value for r in range(RANKS)
    )
    assert keys == records
    assert reg.total("aux.inserts") == records


def test_per_rank_rollup_preserves_totals():
    reg, cluster = _run(FMT_FILTERKV, queries=40)
    rolled = cluster.metrics_rollup()
    assert rolled.total("pipeline.wire_bytes") == reg.total("pipeline.wire_bytes")
    assert rolled.total("aux.inserts") == reg.total("aux.inserts")
    # rank label is gone: one series per (name, remaining labels)
    assert all("rank" not in dict(labels) for _, labels, _ in rolled.series())
    assert len(rolled) < len(reg)


def test_uninstrumented_run_records_nothing():
    """The disabled path: no registry handed in, nothing accumulates."""
    cluster = SimCluster(nranks=RANKS, fmt=FMT_FILTERKV, value_bytes=24, seed=7)
    cluster.run_epoch(200)
    assert len(cluster.metrics) == 0
    assert cluster.metrics.total("pipeline.wire_bytes") == 0


@pytest.mark.parametrize("fmt", [FMT_BASE, FMT_DATAPTR, FMT_FILTERKV], ids=lambda f: f.name)
def test_instrumentation_does_not_change_results(fmt):
    """Counters observe the run; they must not perturb it."""
    reg, cluster = _run(fmt)
    plain = SimCluster(
        nranks=RANKS, fmt=fmt, value_bytes=24, records_hint=RANKS * RECORDS, seed=7
    )
    batches = [random_kv_batch(RECORDS, 24, np.random.default_rng(50 + r)) for r in range(RANKS)]
    for rank, batch in enumerate(batches):
        plain.put(rank, batch)
    plain.finish_epoch()
    assert plain.stats == cluster.stats
