"""Smoke tests: every example script runs to completion.

Examples are the adoption surface; a broken one is a broken deliverable.
Each runs in a subprocess with the repo's interpreter and must exit 0 and
print its success line.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", "OK: all queried values matched"),
    ("format_comparison.py", "filterkv"),
    ("vpic_insitu.py", "OK: trajectory recovered"),
    ("rpc_microbench.py", "per-node all-to-all bandwidth"),
    ("dataset_workflow.py", "OK."),
    ("mpi_partition.py", "records partitioned across"),
]


@pytest.mark.parametrize("script,marker", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, marker):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout
