"""End-to-end scenarios across the whole stack."""

import numpy as np
import pytest

from repro.apps.vpic import VPICSimulation
from repro.apps.workloads import zipf_batches
from repro.cluster import SimCluster
from repro.core import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import KVBatch, random_kv_batch


FORMATS = (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV)


def _run_with_batches(fmt, batches, **kw):
    cluster = SimCluster(nranks=len(batches), fmt=fmt, value_bytes=batches[0].value_bytes, **kw)
    for rank, b in enumerate(batches):
        cluster.put(rank, b)
    cluster.finish_epoch()
    return cluster


@pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
def test_every_written_key_is_readable(fmt):
    """Exhaustive read-your-writes over a full (small) dataset."""
    batches = [random_kv_batch(400, 24, np.random.default_rng(100 + r)) for r in range(6)]
    cluster = _run_with_batches(fmt, batches, records_hint=2400)
    engine = cluster.query_engine()
    for rank, batch in enumerate(batches):
        for i in range(0, len(batch), 37):
            value, qs = engine.get(int(batch.keys[i]))
            assert qs.found, f"{fmt.name}: rank {rank} record {i} lost"
            assert value == batch.value_of(i)


@pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
def test_absent_keys_are_never_fabricated(fmt):
    batches = [random_kv_batch(300, 24, np.random.default_rng(200 + r)) for r in range(4)]
    cluster = _run_with_batches(fmt, batches, records_hint=1200)
    engine = cluster.query_engine()
    rng = np.random.default_rng(5)
    written = set(int(k) for b in batches for k in b.keys)
    misses = 0
    for _ in range(60):
        key = int(rng.integers(0, 2**63))
        if key in written:
            continue
        value, qs = engine.get(key)
        assert value is None and not qs.found
        misses += 1
    assert misses >= 50


def test_vpic_multi_epoch_trajectory():
    """The paper's end-to-end use case: query one particle across dumps."""
    sim = VPICSimulation(nranks=6, particles_per_rank=800, drift=0.2, seed=9)
    target = int(sim.ids[42])
    values = []
    for epoch in range(3):
        sim.step(2)
        cluster = SimCluster(
            nranks=6, fmt=FMT_FILTERKV, value_bytes=56, records_hint=sim.nparticles, epoch=epoch
        )
        for rank, batch in enumerate(sim.dump()):
            cluster.put(rank, batch)
        cluster.finish_epoch()
        value, qs = cluster.query_engine().get(target)
        assert qs.found
        values.append(value)
    # The particle moved: state differs across epochs.
    assert len(set(values)) == 3
    xs = [float(np.frombuffer(v, dtype="<f4")[0]) for v in values]
    assert all(0 <= x < 6 for x in xs)


def test_skewed_keys_still_roundtrip():
    """Zipf-heavy duplicate keys: the first write per key wins at readback,
    and nothing crashes in the lossy index path."""
    (batch,) = zipf_batches(1, 3000, 16, a=1.3, seed=4)
    per_rank = 4
    batches = [
        KVBatch(batch.keys[i::per_rank], batch.values[i::per_rank]) for i in range(per_rank)
    ]
    cluster = _run_with_batches(FMT_FILTERKV, batches, records_hint=3000)
    engine = cluster.query_engine()
    key = int(batches[0].keys[0])
    value, qs = engine.get(key)
    assert qs.found and value is not None


def test_conservation_across_formats():
    """All formats agree on how many records exist and who owns them."""
    batches = [random_kv_batch(1000, 56, np.random.default_rng(300 + r)) for r in range(5)]
    owners = {}
    for fmt in FORMATS:
        cluster = _run_with_batches(fmt, batches, records_hint=5000)
        received = tuple(r.records_received for r in cluster.receivers)
        owners[fmt.name] = received
        assert sum(received) == 5000
    assert owners["base"] == owners["dataptr"] == owners["filterkv"]


def test_filterkv_amplification_visible_in_queries():
    """Statistically, some FilterKV queries probe more than one partition."""
    batches = [random_kv_batch(4000, 8, np.random.default_rng(400 + r)) for r in range(8)]
    cluster = _run_with_batches(FMT_FILTERKV, batches, records_hint=32_000)
    engine = cluster.query_engine()
    probes = []
    for i in range(80):
        _, qs = engine.get(int(batches[i % 8].keys[i * 7]))
        probes.append(qs.partitions_searched)
    assert max(probes) > 1  # lossiness shows up
    assert np.mean(probes) < 4  # but stays bounded
