"""Cross-validation: the DES and the analytic flow model must agree.

The big sweeps (Figs. 8–10) trust the flow model because simulating tens
of millions of batch events is infeasible; this test earns that trust by
running a *small* all-to-all entirely on the discrete-event engine and
comparing the achieved per-node bandwidth against the flow model's
prediction for the same configuration.
"""

import pytest

from repro.net.cpu import CPUS, TRANSPORTS, rpc_cpu_time
from repro.net.des import Resource, Simulator
from repro.net.flowmodel import pernode_alltoall_bandwidth
from repro.net.topology import DragonflyTopology


def _des_alltoall(cpu_name: str, nprocs: int, msgs_per_pair: int, msg_bytes: int) -> float:
    """Run a CPU-bound all-to-all on the DES; returns bytes/s per process.

    One core per process; every message charges send CPU at the source and
    receive CPU at the destination, serialized through each process's core
    resource — the same structure the flow model's cpu_limit assumes.
    """
    cpu = CPUS[cpu_name]
    transport = TRANSPORTS["gni"]
    sim = Simulator()
    cores = [Resource(sim, 1) for _ in range(nprocs)]
    per_side = rpc_cpu_time(cpu, transport, msg_bytes, blocking=False)

    def charge(core):
        yield core.request()
        yield sim.timeout(per_side)
        core.release()

    # Every message costs one send-side charge and one receive-side charge,
    # all contending for the single core each process owns.
    for src in range(nprocs):
        for dst in range(nprocs):
            if dst == src:
                continue
            for _ in range(msgs_per_pair):
                sim.spawn(charge(cores[src]))
                sim.spawn(charge(cores[dst]))
    sim.run()
    total_bytes = nprocs * (nprocs - 1) * msgs_per_pair * msg_bytes
    return total_bytes / sim.now / nprocs


@pytest.mark.parametrize("cpu", ["haswell", "trinity-knl"])
def test_des_matches_flowmodel_cpu_limit(cpu):
    nprocs, msg_bytes = 4, 16384
    des_bw = _des_alltoall(cpu, nprocs, msgs_per_pair=40, msg_bytes=msg_bytes)
    # Wide-open topology: the flow model's binding limit is the CPU term.
    topo = DragonflyTopology(base_efficiency=1.0, taper_alpha=0.0)
    model = pernode_alltoall_bandwidth(cpu, "gni", topo, nprocs, 1, msg_bytes)
    assert model.bottleneck == "cpu"
    assert des_bw == pytest.approx(model.cpu_limit, rel=0.15)


def test_des_preserves_cpu_ratio_between_processors():
    h = _des_alltoall("haswell", 4, 30, 16384)
    k = _des_alltoall("trinity-knl", 4, 30, 16384)
    assert h / k == pytest.approx(4.0, rel=0.05)
