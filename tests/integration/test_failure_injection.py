"""Failure injection: corrupted storage must be detected, never served.

All damage is introduced through the public fault surface on
`StorageDevice` (``corrupt`` / ``truncate``) — the same hooks the
``repro.faults`` plans use — so these tests double as a contract check
on that API.  Coverage walks the whole table layout: data blocks, the
filter block, the index block, the footer body, and the footer checksum.
"""

import numpy as np
import pytest

from repro.cluster import SimCluster
from repro.core import FMT_BASE, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.pipeline import main_table_name
from repro.storage.blockio import StorageDevice
from repro.storage.sstable import CorruptBlockError, SSTableReader, SSTableWriter


def _build_table(dev, n=500):
    w = SSTableWriter(dev, "t", block_size=512)
    for k in range(n):
        w.add(k, b"payload-%03d" % (k % 1000))
    return w.finish()


def test_data_block_corruption_detected():
    dev = StorageDevice()
    stats = _build_table(dev)
    r = SSTableReader(dev, "t")
    assert r.get(123) is not None
    # Flip a byte in the middle of the data region.
    dev.corrupt("t", stats.data_bytes // 2)
    r2 = SSTableReader(dev, "t")
    hit_corruption = False
    for k in range(0, 500, 13):
        try:
            r2.get(k)
        except CorruptBlockError:
            hit_corruption = True
    assert hit_corruption


def test_corruption_ignored_when_verification_disabled():
    dev = StorageDevice()
    stats = _build_table(dev)
    dev.corrupt("t", stats.data_bytes // 2)
    r = SSTableReader(dev, "t", verify_checksums=False)
    # No exception — the reader knowingly serves unverified bytes.
    for k in range(0, 500, 13):
        r.get(k)


def test_filter_block_corruption_detected():
    dev = StorageDevice()
    stats = _build_table(dev)
    assert stats.filter_bytes > 0
    # The filter block sits right after the data region; its checksum is
    # verified when the reader opens the table.
    dev.corrupt("t", stats.data_bytes + stats.filter_bytes // 2, xor=0x40)
    with pytest.raises(CorruptBlockError, match="filter block"):
        SSTableReader(dev, "t")


def test_index_block_corruption_detected():
    dev = StorageDevice()
    stats = _build_table(dev)
    # The index block sits between the filter block and the footer.
    dev.corrupt("t", stats.data_bytes + stats.filter_bytes + stats.index_bytes // 2)
    with pytest.raises(CorruptBlockError, match="index block"):
        SSTableReader(dev, "t")


def test_footer_corruption_detected():
    dev = StorageDevice()
    _build_table(dev)
    size = dev.file_size("t")
    dev.corrupt("t", size - 30)  # inside the footer body
    with pytest.raises(ValueError):
        SSTableReader(dev, "t")


def test_footer_checksum_corruption_detected():
    dev = StorageDevice()
    _build_table(dev)
    size = dev.file_size("t")
    dev.corrupt("t", size - 4, xor=0x01)  # inside the trailing fastsum64
    with pytest.raises(CorruptBlockError, match="footer checksum"):
        SSTableReader(dev, "t")


def test_truncated_table_detected():
    dev = StorageDevice()
    _build_table(dev)
    dev.truncate("t", 40)  # shorter than the 64-byte footer
    with pytest.raises(ValueError):
        SSTableReader(dev, "t")


def test_table_truncated_mid_footer_detected():
    dev = StorageDevice()
    _build_table(dev)
    # Drop the tail of the footer: what remains parses as a misaligned
    # footer window whose magic/checksum cannot both survive.
    dev.truncate("t", dev.file_size("t") - 16)
    with pytest.raises(ValueError):
        SSTableReader(dev, "t")


def test_scan_detects_corruption():
    dev = StorageDevice()
    stats = _build_table(dev)
    dev.corrupt("t", stats.data_bytes // 3)
    r = SSTableReader(dev, "t")
    with pytest.raises(CorruptBlockError):
        r.scan()


@pytest.mark.parametrize("fmt", [FMT_BASE, FMT_FILTERKV], ids=lambda f: f.name)
def test_cluster_partition_corruption_surfaces_in_queries(fmt):
    """End to end: flip bytes in a persisted partition; queries that touch
    the damaged block raise rather than returning wrong values."""
    cluster = SimCluster(nranks=4, fmt=fmt, value_bytes=24, records_hint=4000, seed=8)
    batches = [random_kv_batch(1000, 24, np.random.default_rng(700 + r)) for r in range(4)]
    for rank, b in enumerate(batches):
        cluster.put(rank, b)
    cluster.finish_epoch()
    # Damage every partition's data region.
    for rank in range(4):
        name = main_table_name(0, rank)
        cluster.device.corrupt(name, cluster.device.file_size(name) // 3)
    engine = cluster.query_engine()
    outcomes = {"ok": 0, "detected": 0}
    for rank, batch in enumerate(batches):
        for i in range(0, 1000, 101):
            try:
                value, qs = engine.get(int(batch.keys[i]))
                if qs.found:
                    assert value == batch.value_of(i)  # never wrong data
                outcomes["ok"] += 1
            except CorruptBlockError:
                outcomes["detected"] += 1
    assert outcomes["detected"] > 0
