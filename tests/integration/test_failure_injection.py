"""Failure injection: corrupted storage must be detected, never served."""

import numpy as np
import pytest

from repro.cluster import SimCluster
from repro.core import FMT_BASE, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.pipeline import main_table_name
from repro.storage.blockio import StorageDevice
from repro.storage.sstable import CorruptBlockError, SSTableReader, SSTableWriter


def _corrupt(device: StorageDevice, name: str, offset: int, delta: int = 1) -> None:
    buf = device._files[name].getbuffer()
    buf[offset] = (buf[offset] + delta) % 256


def _build_table(dev, n=500):
    w = SSTableWriter(dev, "t", block_size=512)
    for k in range(n):
        w.add(k, b"payload-%03d" % (k % 1000))
    return w.finish()


def test_data_block_corruption_detected():
    dev = StorageDevice()
    stats = _build_table(dev)
    r = SSTableReader(dev, "t")
    assert r.get(123) is not None
    # Flip a byte in the middle of the data region.
    _corrupt(dev, "t", stats.data_bytes // 2)
    r2 = SSTableReader(dev, "t")
    hit_corruption = False
    for k in range(0, 500, 13):
        try:
            r2.get(k)
        except CorruptBlockError:
            hit_corruption = True
    assert hit_corruption


def test_corruption_ignored_when_verification_disabled():
    dev = StorageDevice()
    stats = _build_table(dev)
    _corrupt(dev, "t", stats.data_bytes // 2)
    r = SSTableReader(dev, "t", verify_checksums=False)
    # No exception — the reader knowingly serves unverified bytes.
    for k in range(0, 500, 13):
        r.get(k)


def test_footer_corruption_detected():
    dev = StorageDevice()
    _build_table(dev)
    size = dev.file_size("t")
    _corrupt(dev, "t", size - 30)  # inside the footer
    with pytest.raises(ValueError):
        SSTableReader(dev, "t")


def test_truncated_table_detected():
    dev = StorageDevice()
    _build_table(dev)
    import io

    blob = dev._files["t"].getbuffer().tobytes()[:40]
    dev._files["trunc"] = io.BytesIO(blob)
    with pytest.raises(ValueError):
        SSTableReader(dev, "trunc")


def test_scan_detects_corruption():
    dev = StorageDevice()
    stats = _build_table(dev)
    _corrupt(dev, "t", stats.data_bytes // 3)
    r = SSTableReader(dev, "t")
    with pytest.raises(CorruptBlockError):
        r.scan()


@pytest.mark.parametrize("fmt", [FMT_BASE, FMT_FILTERKV], ids=lambda f: f.name)
def test_cluster_partition_corruption_surfaces_in_queries(fmt):
    """End to end: flip bytes in a persisted partition; queries that touch
    the damaged block raise rather than returning wrong values."""
    cluster = SimCluster(nranks=4, fmt=fmt, value_bytes=24, records_hint=4000, seed=8)
    batches = [random_kv_batch(1000, 24, np.random.default_rng(700 + r)) for r in range(4)]
    for rank, b in enumerate(batches):
        cluster.put(rank, b)
    cluster.finish_epoch()
    # Damage every partition's data region.
    for rank in range(4):
        name = main_table_name(0, rank)
        _corrupt(cluster.device, name, cluster.device.file_size(name) // 3)
    engine = cluster.query_engine()
    outcomes = {"ok": 0, "detected": 0}
    for rank, batch in enumerate(batches):
        for i in range(0, 1000, 101):
            try:
                value, qs = engine.get(int(batch.keys[i]))
                if qs.found:
                    assert value == batch.value_of(i)  # never wrong data
                outcomes["ok"] += 1
            except CorruptBlockError:
                outcomes["detected"] += 1
    assert outcomes["detected"] > 0
