"""Windowed telemetry rings: digests and the serving hub."""

import pytest

from repro.obs import TimeseriesHub, WindowedDigest


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# -- WindowedDigest -----------------------------------------------------------


def test_digest_rate_and_quantiles_over_window():
    clock = FakeClock()
    d = WindowedDigest(window_s=10.0, clock=clock)
    for i in range(10):
        clock.now = float(i)
        d.observe(0.001 * (i + 1))  # 1..10 ms
    clock.now = 9.0
    snap = d.snapshot()
    assert snap["count"] == 10
    assert snap["rate_per_s"] == pytest.approx(10 / 9.0, rel=0.01)
    assert snap["p50"] == pytest.approx(5.5, rel=0.01)
    assert snap["max"] == pytest.approx(10.0)


def test_digest_window_excludes_old_samples():
    clock = FakeClock()
    d = WindowedDigest(window_s=5.0, clock=clock)
    clock.now = 0.0
    d.observe(1.0)
    clock.now = 100.0
    d.observe(2.0)
    snap = d.snapshot()
    assert snap["count"] == 1  # the t=0 sample fell out of the window
    assert snap["max"] == pytest.approx(2000.0)


def test_digest_ring_overwrites_oldest():
    clock = FakeClock()
    d = WindowedDigest(capacity=4, window_s=1000.0, clock=clock)
    for i in range(10):
        clock.now = float(i)
        d.observe(float(i))
    assert len(d) == 4
    assert d.snapshot()["count"] == 4


def test_digest_empty_snapshot_is_zeroed():
    snap = WindowedDigest().snapshot()
    assert snap["count"] == 0 and snap["rate_per_s"] == 0.0 and snap["p99"] == 0.0


def test_digest_validates_parameters():
    with pytest.raises(ValueError):
        WindowedDigest(capacity=0)
    with pytest.raises(ValueError):
        WindowedDigest(window_s=0)


# -- TimeseriesHub ------------------------------------------------------------

STATUSES = ("ok", "not_found", "overloaded")


def _hub(clock):
    return TimeseriesHub(
        STATUSES, answered=("ok", "not_found"), shed=("overloaded",), window_s=10.0, clock=clock
    )


def test_hub_counts_rates_and_shed_rate():
    clock = FakeClock()
    hub = _hub(clock)
    for i in range(8):
        clock.now = i * 0.5
        hub.record("ok", 0.001)
    clock.now = 4.0
    hub.record("overloaded", 0.0)
    hub.record("not_found", 0.002)
    snap = hub.snapshot()
    assert snap["requests"] == 10
    assert snap["counts"] == {"ok": 8, "not_found": 1, "overloaded": 1}
    assert snap["shed_rate"] == pytest.approx(0.1)
    assert snap["qps"] == pytest.approx(10 / 4.0, rel=0.01)


def test_hub_latency_quantiles_cover_answered_only():
    clock = FakeClock()
    hub = _hub(clock)
    hub.record("ok", 0.001)
    hub.record("not_found", 0.003)
    hub.record("overloaded", 9.0)  # sheds must not pollute latency
    lat = hub.snapshot()["latency_ms"]
    assert lat["count"] == 2
    assert lat["max"] == pytest.approx(3.0)
    assert set(lat) >= {"p50", "p95", "p99", "mean"}


def test_hub_window_override_and_aging():
    clock = FakeClock()
    hub = _hub(clock)
    clock.now = 0.0
    hub.record("ok", 0.001)
    clock.now = 8.0
    hub.record("ok", 0.001)
    assert hub.snapshot()["requests"] == 2  # both inside 10 s
    assert hub.snapshot(window_s=5.0)["requests"] == 1
    clock.now = 30.0
    assert hub.snapshot()["requests"] == 0
    assert hub.snapshot()["shed_rate"] == 0.0


def test_hub_rejects_unknown_statuses():
    with pytest.raises(ValueError):
        TimeseriesHub(())
    with pytest.raises(ValueError):
        TimeseriesHub(("ok",), shed=("nope",))
    hub = _hub(FakeClock())
    with pytest.raises(KeyError):
        hub.record("mystery", 0.0)
