"""Request tracing: contexts, span trees, counter attribution, IO."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    SpanRecord,
    TraceCollector,
    TraceContext,
    active_tracer,
    build_trees,
    child_span,
    chrome_trace,
    counter_key,
    current_span,
    dump_trace_jsonl,
    load_trace_jsonl,
    render_tree,
    snapshot_counters,
    span_from_dict,
    span_to_dict,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# -- context propagation ------------------------------------------------------


def test_trace_context_wire_round_trip():
    ctx = TraceContext("t" * 16, "s" * 16, sampled=True)
    assert TraceContext.from_wire(ctx.to_wire()) == ctx


@pytest.mark.parametrize(
    "bad",
    [None, 42, "str", [], {}, {"trace_id": "x"}, {"trace_id": 1, "span_id": 2}],
)
def test_malformed_wire_context_is_dropped_not_raised(bad):
    assert TraceContext.from_wire(bad) is None


def test_from_wire_defaults_sampled_true():
    ctx = TraceContext.from_wire({"trace_id": "t", "span_id": "s"})
    assert ctx.sampled is True


# -- collector basics ---------------------------------------------------------


def test_sampling_is_seeded_and_deterministic():
    picks = [TraceCollector(sample_rate=0.5, seed=7).should_sample() for _ in range(3)]
    assert picks[0] == picks[1] == picks[2]
    a = TraceCollector(sample_rate=0.5, seed=7)
    b = TraceCollector(sample_rate=0.5, seed=7)
    assert [a.should_sample() for _ in range(64)] == [b.should_sample() for _ in range(64)]


def test_zero_rate_never_samples_but_still_records():
    c = TraceCollector(sample_rate=0.0)
    assert not any(c.should_sample() for _ in range(64))
    root = c.start("propagated")  # a client-sampled trace still lands
    root.finish()
    assert len(c) == 1


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        TraceCollector(sample_rate=1.5)
    with pytest.raises(ValueError):
        TraceCollector(max_spans=0)


def test_span_ring_is_bounded():
    c = TraceCollector(max_spans=4)
    for i in range(10):
        c.start(f"s{i}").finish()
    assert len(c) == 4
    assert [s.name for s in c.spans] == ["s6", "s7", "s8", "s9"]


def test_parent_links_and_trace_grouping():
    c = TraceCollector()
    root = c.start("root")
    with c.span("child", parent=root) as child:
        with c.span("grandchild", parent=child) as g:
            pass
    root.finish()
    spans = c.trace(root.trace_id)
    assert {s.name for s in spans} == {"root", "child", "grandchild"}
    by_name = {s.name: s for s in spans}
    assert by_name["child"].parent_id == root.span_id
    assert by_name["grandchild"].parent_id == by_name["child"].span_id
    assert by_name["grandchild"].trace_id == root.trace_id
    # children finished inside the CMs, before the root
    assert [s.name for s in spans] == ["grandchild", "child", "root"]


def test_remote_parent_context_extends_the_trace():
    c = TraceCollector()
    ctx = TraceContext("remote-trace", "remote-span")
    with c.span("local", parent=ctx):
        pass
    (s,) = c.spans
    assert s.trace_id == "remote-trace"
    assert s.parent_id == "remote-span"


def test_span_records_error_status_and_reraises():
    c = TraceCollector()
    with pytest.raises(RuntimeError):
        with c.span("boom"):
            raise RuntimeError("x")
    assert c.spans[0].status == "error"


def test_finish_is_idempotent():
    c = TraceCollector()
    span = c.start("once")
    assert span.finish() is not None
    assert span.finish() is None
    assert len(c) == 1


def test_subtree_and_recent_traces_and_drain():
    c = TraceCollector()
    r1 = c.start("r1")
    with c.span("a", parent=r1) as a:
        with c.span("b", parent=a):
            pass
    r1.finish()
    r2 = c.start("r2")
    r2.finish()
    sub = c.subtree(a.span_id)
    assert {s.name for s in sub} == {"a", "b"}
    recent = c.recent_traces(2)
    assert [t[0].trace_id for t in recent] == [r2.trace_id, r1.trace_id]
    drained = c.drain()
    assert len(drained) == 4 and len(c) == 0


# -- counter attribution ------------------------------------------------------


def test_counter_key_formatting():
    assert counter_key("reads", ()) == "reads"
    assert counter_key("reads", (("dev", "ssd"), ("rank", 3))) == "reads{dev=ssd,rank=3}"


def test_snapshot_counters_prefix_filter():
    m = MetricsRegistry()
    m.counter("serve.requests").inc(2)
    m.counter("other.thing").inc(5)
    m.histogram("serve.lat").observe(1.0)  # histograms are not counters
    snap = snapshot_counters(m, prefixes=("serve.",))
    assert snap == {"serve.requests": 2}


def test_exclusive_counter_deltas_sum_to_aggregate():
    m = MetricsRegistry()
    c = TraceCollector()
    with c.span("parent", counters=m) as p:
        m.counter("work").inc(1)  # parent's own work
        with c.span("child", parent=p, counters=m):
            m.counter("work").inc(3)
        m.counter("work").inc(2)  # more parent work after the child
    by_name = {s.name: s for s in c.spans}
    assert by_name["child"].counters == {"work": 3}
    assert by_name["parent"].counters == {"work": 3}  # 6 inclusive - 3 claimed
    total = sum(s.counters.get("work", 0) for s in c.spans)
    assert total == m.counter("work").value == 6


def test_zero_delta_series_omitted():
    m = MetricsRegistry()
    m.counter("quiet").inc(5)
    c = TraceCollector()
    with c.span("s", counters=m):
        pass
    assert c.spans[0].counters == {}


def test_explicit_charge_merges_with_snapshot_deltas():
    m = MetricsRegistry()
    c = TraceCollector()
    with c.span("s", counters=m) as s:
        m.counter("snap").inc(2)
        s.charge("manual", 1)
        s.charge("manual", 1)
    assert c.spans[0].counters == {"snap": 2, "manual": 2}


# -- contextvar propagation ---------------------------------------------------


def test_child_span_is_noop_without_active_trace():
    assert current_span() is None
    with child_span("sstable.get") as span:
        assert span is None  # shared null CM: nothing created


def test_child_span_nests_under_current():
    c = TraceCollector()
    with c.span("outer") as outer:
        assert current_span() is outer
        with child_span("inner", flag=True) as inner:
            assert inner is not None
            assert current_span() is inner
        assert current_span() is outer
    assert current_span() is None
    by_name = {s.name: s for s in c.spans}
    assert by_name["inner"].parent_id == outer.span_id
    assert by_name["inner"].attrs["flag"] is True


def test_null_tracer_retains_nothing():
    assert active_tracer(None) is NULL_TRACER
    assert not NULL_TRACER.should_sample()
    with NULL_TRACER.span("x"):
        pass
    assert len(NULL_TRACER) == 0


# -- trace IO -----------------------------------------------------------------


def _sample_spans():
    clock = FakeClock()
    c = TraceCollector(clock=clock)
    root = c.start("serve.get", key=9)
    clock.now = 0.001
    with c.span("engine.get_many", parent=root) as e:
        e.charge("reader.queries", 1)
        clock.now = 0.004
    clock.now = 0.005
    root.finish()
    return c.spans


def test_jsonl_round_trip():
    spans = _sample_spans()
    text = dump_trace_jsonl(spans)
    first = json.loads(text.splitlines()[0])
    assert first == {"schema": "repro.trace/v1"}
    back = load_trace_jsonl(text)
    assert [span_to_dict(s) for s in back] == [span_to_dict(s) for s in spans]


def test_load_rejects_unknown_schema():
    with pytest.raises(ValueError):
        load_trace_jsonl('{"schema": "repro.trace/v999"}\n')


def test_span_dict_round_trip_defaults():
    s = SpanRecord("t", "s", None, "n", 0.0, 1.0)
    assert span_from_dict(span_to_dict(s)) == s


def test_chrome_trace_document_shape():
    spans = _sample_spans()
    doc = chrome_trace(spans)
    assert doc["metadata"]["schema"] == "repro.trace/v1"
    events = doc["traceEvents"]
    assert len(events) == len(spans)
    assert all(e["ph"] == "X" for e in events)
    # all spans of one trace share a lane; timestamps are relative µs
    assert len({e["tid"] for e in events}) == 1
    engine = next(e for e in events if e["name"] == "engine.get_many")
    assert engine["ts"] == pytest.approx(1000.0)
    assert engine["dur"] == pytest.approx(3000.0)
    assert engine["args"]["counter.reader.queries"] == 1


def test_build_trees_nests_by_parent():
    spans = _sample_spans()
    (tree,) = build_trees(spans)
    assert tree["span"].name == "serve.get"
    assert [c["span"].name for c in tree["children"]] == ["engine.get_many"]


def test_render_tree_shows_durations_and_counters():
    out = render_tree(_sample_spans())
    assert "serve.get" in out
    assert "engine.get_many" in out
    assert "· reader.queries +1" in out
    assert render_tree([]) == "(no spans)"
