"""Tests for JSON/JSONL export of a metrics registry."""

import json

from repro.obs import (
    SCHEMA,
    MetricsRegistry,
    dump_jsonl,
    load_jsonl,
    registry_to_dict,
    registry_to_json,
)


def _sample_registry():
    reg = MetricsRegistry("run")
    reg.counter("pipeline.wire_bytes", format="filterkv").inc(800)
    reg.counter("pipeline.wire_bytes", format="dataptr").inc(1600)
    reg.gauge("aux.utilization", backend="cuckoo").set(0.84)
    h = reg.histogram("reader.read_amplification", format="filterkv")
    for v in (1, 1, 2, 3):
        h.observe(v)
    return reg


def test_registry_to_dict_shape():
    doc = registry_to_dict(_sample_registry())
    assert doc["schema"] == SCHEMA
    assert doc["name"] == "run"
    assert len(doc["metrics"]) == 4
    by_kind = {m["kind"] for m in doc["metrics"]}
    assert by_kind == {"counter", "gauge", "histogram"}
    hist = next(m for m in doc["metrics"] if m["kind"] == "histogram")
    assert hist["count"] == 4 and hist["p50"] == 1.5 and hist["values"] == [1, 1, 2, 3]


def test_registry_to_json_is_valid_and_sorted():
    text = registry_to_json(_sample_registry())
    doc = json.loads(text)
    names = [m["name"] for m in doc["metrics"]]
    assert names == sorted(names)


def test_samples_can_be_elided():
    doc = registry_to_dict(_sample_registry(), include_samples=False)
    hist = next(m for m in doc["metrics"] if m["kind"] == "histogram")
    assert "values" not in hist
    assert hist["p99"] > 0  # summary stats survive


def test_jsonl_round_trip_exact():
    reg = _sample_registry()
    text = dump_jsonl(reg)
    assert text.endswith("\n")
    back = load_jsonl(text, name="run")
    assert registry_to_dict(back)["metrics"] == registry_to_dict(reg)["metrics"]
    # Values survive a second trip too (idempotent).
    assert dump_jsonl(back) == text


def test_jsonl_empty_registry():
    assert dump_jsonl(MetricsRegistry()) == ""
    assert len(load_jsonl("")) == 0


def test_round_tripped_registry_still_merges():
    back = load_jsonl(dump_jsonl(_sample_registry()))
    total = MetricsRegistry()
    total.merge(back, rank=0).merge(back, rank=1)
    assert total.total("pipeline.wire_bytes") == 2 * (800 + 1600)


def test_prometheus_exposition_format():
    from repro.obs import registry_to_prometheus

    text = registry_to_prometheus(_sample_registry())
    lines = text.splitlines()
    assert text.endswith("\n")
    # counters gain _total; labels are rendered and escaped
    assert '# TYPE pipeline_wire_bytes_total counter' in lines
    assert 'pipeline_wire_bytes_total{format="filterkv"} 800' in lines
    assert '# TYPE aux_utilization gauge' in lines
    assert 'aux_utilization{backend="cuckoo"} 0.84' in lines
    # histograms export as summaries with quantile series + _sum/_count
    assert '# TYPE reader_read_amplification summary' in lines
    assert any(
        l.startswith('reader_read_amplification{format="filterkv",quantile="0.95"}')
        for l in lines
    )
    assert any(l.startswith("reader_read_amplification_count") for l in lines)
    # TYPE line precedes its family's samples
    assert lines.index('# TYPE aux_utilization gauge') < lines.index(
        'aux_utilization{backend="cuckoo"} 0.84'
    )


def test_prometheus_sanitizes_names_and_escapes_values():
    from repro.obs import registry_to_prometheus

    reg = MetricsRegistry()
    reg.counter("weird-name.x", path='a"b\\c').inc(1)
    text = registry_to_prometheus(reg)
    assert "weird_name_x_total" in text
    assert '\\"' in text and "\\\\" in text


def test_prometheus_empty_registry():
    from repro.obs import registry_to_prometheus

    assert registry_to_prometheus(MetricsRegistry()) == ""
