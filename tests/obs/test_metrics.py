"""Unit tests for the metrics registry and instruments."""

import pytest

from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    active,
    get_default_registry,
    set_default_registry,
)


def test_counter_accumulates_and_rejects_negative():
    reg = MetricsRegistry()
    c = reg.counter("x.count")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_same_name_and_labels_is_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("a", rank=1) is reg.counter("a", rank=1)
    assert reg.counter("a", rank=1) is not reg.counter("a", rank=2)
    assert len(reg) == 2


def test_kind_conflict_rejected():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")


def test_gauge_moves_both_ways():
    g = MetricsRegistry().gauge("level")
    g.set(10)
    g.dec(3)
    g.inc()
    assert g.value == 8


def test_histogram_quantiles_interpolated():
    h = MetricsRegistry().histogram("lat")
    for v in range(1, 101):  # 1..100
        h.observe(v)
    assert h.count == 100
    assert h.mean == pytest.approx(50.5)
    assert h.quantile(0.0) == 1
    assert h.quantile(1.0) == 100
    assert h.quantile(0.5) == pytest.approx(50.5)
    assert h.quantile(0.9) == pytest.approx(90.1)
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_empty_histogram_is_all_zero():
    h = MetricsRegistry().histogram("empty")
    assert h.count == 0 and h.mean == 0.0 and h.quantile(0.5) == 0.0


def test_merge_adds_rank_labels_and_sums():
    world = MetricsRegistry("world")
    for rank in range(4):
        local = MetricsRegistry()
        local.counter("pipeline.records").inc(100 * (rank + 1))
        local.histogram("lat").observe(rank)
        world.merge(local, rank=rank)
    assert len(world) == 8  # 4 ranks x 2 series
    assert world.total("pipeline.records") == 1000
    assert world.total("pipeline.records", rank=2) == 300


def test_rollup_drops_label_and_combines():
    world = MetricsRegistry()
    for rank in range(4):
        world.counter("c", rank=rank, format="filterkv").inc(10)
        world.histogram("h", rank=rank).observe(rank)
    rolled = world.rollup("rank")
    assert len(rolled) == 2
    assert rolled.counter("c", format="filterkv").value == 40
    assert rolled.histogram("h").count == 4
    # original untouched
    assert len(world) == 8


def test_timed_records_ok_and_error_outcomes():
    reg = MetricsRegistry()
    t = [0.0]

    def clock():
        t[0] += 1.0
        return t[0]

    with reg.timed("op", clock=clock):
        pass
    with pytest.raises(RuntimeError):
        with reg.timed("op", clock=clock):
            raise RuntimeError("boom")
    ok = reg.histogram("op", outcome="ok")
    err = reg.histogram("op", outcome="error")
    assert ok.count == 1 and err.count == 1
    assert ok.total == pytest.approx(1.0)


def test_null_registry_accumulates_nothing():
    null = NullRegistry()
    null.counter("a").inc(5)
    null.gauge("b").set(3)
    null.histogram("c").observe(1)
    with null.timed("d"):
        pass
    assert len(null) == 0
    assert null.counter("a").value == 0
    assert null.histogram("c").count == 0
    assert null.rollup("rank") is null
    assert null.merge(MetricsRegistry()) is null


def test_active_normalizes_none():
    assert active(None) is NULL_REGISTRY
    reg = MetricsRegistry()
    assert active(reg) is reg


def test_default_registry_install_and_restore():
    assert get_default_registry() is NULL_REGISTRY
    reg = MetricsRegistry("run")
    prev = set_default_registry(reg)
    try:
        assert get_default_registry() is reg
    finally:
        set_default_registry(prev)
    assert get_default_registry() is NULL_REGISTRY
    # None clears back to the null registry
    set_default_registry(MetricsRegistry())
    set_default_registry(None)
    assert get_default_registry() is NULL_REGISTRY


def test_histogram_summary_quantiles():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    for v in range(1, 101):
        h.observe(float(v))
    s = h.summary()
    assert s["count"] == 100
    assert s["p50"] == pytest.approx(50.5)
    assert s["p95"] == pytest.approx(95.05)
    assert s["p99"] == pytest.approx(99.01)
    assert s["max"] == 100.0


def test_rollup_pools_histogram_observations_for_quantiles():
    reg = MetricsRegistry()
    reg.histogram("lat", rank=0).observe(1.0)
    reg.histogram("lat", rank=1).observe(3.0)
    pooled = reg.rollup("rank").histogram("lat")
    assert pooled.count == 2
    assert pooled.summary()["p50"] == pytest.approx(2.0)
    assert pooled.summary()["p95"] == pytest.approx(2.9)
