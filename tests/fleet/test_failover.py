"""Failover: replica promotion, recovery, hedging, TCP parity.

Crash semantics come from ``repro.faults``: a crashed shard's device
fails every probe, its service answers typed errors, and the router's
breaker + candidate ordering must promote the replicas — emergently, with
no leader election — while every answer stays byte-correct.  The
`FAULT_SEED_OFFSET` environment knob widens the seeded sweep in CI.
"""

import asyncio
import os

import pytest

from repro.serve import ANY_EPOCH, OK

from .conftest import TINY_CACHES, absent_keys, build_fleet, run

SEED_OFFSET = int(os.environ.get("FAULT_SEED_OFFSET", "0"))

FAILOVER_ROUTER = dict(backoff_s=0.0005, breaker_cooldown_s=30.0)


@pytest.mark.parametrize("case", range(3))
def test_replica_promotion_under_crash(case):
    seed = 17 + 13 * case + SEED_OFFSET
    fleet, dumps, truth = build_fleet(
        nshards=3,
        rf=2,
        epochs=1,
        seed=seed,
        service_kwargs=TINY_CACHES,
        router_kwargs=dict(FAILOVER_ROUTER),
    )
    victim = case % 3
    keys = sorted(truth)[::3]
    victim_keys = [k for k in keys if victim in fleet.ring.owners(k, fleet.rf)]
    assert victim_keys, "seeded dataset left the victim shard empty?"

    async def go():
        async with fleet:
            router = fleet.router
            fleet.crash_shard(victim)
            for k in keys:
                r = await router.get(k, epoch=ANY_EPOCH)
                assert r.status == OK, (k, r)
                assert r.value == truth[k], f"key {k} wrong during crash"
            st = router.stats()
            assert st["failovers"] > 0
            assert st["breakers"][str(victim)] == "open"
            assert st["requests"]["error"] == 0

            await fleet.recover_shard(victim)
            st = router.stats()
            assert st["breakers"][str(victim)] == "closed"
            assert fleet.shards[victim].last_recovery is not None
            for k in victim_keys:
                r = await router.get(k, epoch=ANY_EPOCH)
                assert r.status == OK and r.value == truth[k], (
                    f"key {k} wrong after recovery"
                )
            # The recovered shard serves again: its view is fresh and its
            # breaker closed, so victim-owned keys route to it once more.
            assert not router.views[victim].stale

    run(go())


def test_crash_with_rf1_loses_availability_not_correctness():
    """Sanity check on the replication claim itself: with rf=1 there is
    no replica to promote, so a crashed primary's keys become typed
    errors — never wrong bytes."""
    fleet, dumps, truth = build_fleet(
        nshards=2,
        rf=1,
        epochs=1,
        seed=61,
        service_kwargs=TINY_CACHES,
        router_kwargs=dict(FAILOVER_ROUTER),
    )

    async def go():
        async with fleet:
            fleet.crash_shard(0)
            statuses = {}
            for k in sorted(truth)[::5]:
                r = await fleet.router.get(k, epoch=ANY_EPOCH)
                statuses.setdefault(r.status, 0)
                statuses[r.status] += 1
                if r.status == OK:
                    assert r.value == truth[k]
                else:
                    assert r.status == "error"
                    assert fleet.ring.owners(k, 1) == [0]
            assert statuses.get("error", 0) > 0, statuses
            assert statuses.get(OK, 0) > 0, statuses

    run(go())


class SlowClient:
    """Delays every get — a shard that is alive but sitting on the
    deadline, which is what hedging exists for."""

    def __init__(self, inner, delay_s):
        self._inner = inner
        self._delay_s = delay_s

    async def get(self, *args, **kwargs):
        await asyncio.sleep(self._delay_s)
        return await self._inner.get(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def test_hedged_read_beats_slow_primary():
    fleet, dumps, truth = build_fleet(
        nshards=2, rf=2, epochs=1, seed=23, router_kwargs=dict(hedge_fraction=0.1)
    )

    async def go():
        async with fleet:
            router = fleet.router
            key = next(iter(sorted(truth)))
            primary = fleet.ring.owners(key, fleet.rf)[0]
            fleet.clients[primary] = SlowClient(fleet.clients[primary], 0.5)
            r = await router.get(key, epoch=ANY_EPOCH, deadline_s=1.0)
            assert r.status == OK and r.value == truth[key]
            assert router.stats()["hedges"] >= 1

    run(go())


def test_tcp_fleet_matches_truth():
    """Same drill over real sockets: shards behind `ServeServer`, the
    router speaking the sealed-frame protocol on both sides."""
    fleet, dumps, truth = build_fleet(
        nshards=2, rf=2, epochs=1, records=150, seed=19, tcp=True
    )
    keys = sorted(truth)[::4] + absent_keys(truth, n=8)

    async def go():
        async with fleet:
            for k in keys:
                r = await fleet.router.get(k, epoch=ANY_EPOCH)
                if k in truth:
                    assert r.status == OK and r.value == truth[k]
                else:
                    assert r.status == "not_found"
            st = fleet.router.stats()
            assert st["aux_routed"] == len(keys)
            # Rollup sanity: shard serve.* totals surface as fleet.*.
            rolled = fleet.rollup()
            assert rolled.total("fleet.requests") >= len(keys)

    run(go())
