"""Shared harness for the fleet tests.

Same conventions as ``tests/serve``: no async plugin, so tests drive
coroutines with `run`.  The central fixture is the *fleet vs merged
store* pair — a sharded fleet and one unsharded `MultiEpochStore`
ingesting the identical dumps — because the fleet's whole contract is
that sharding is invisible: every answer must be byte-identical to what
the single store would say.
"""

import asyncio

import numpy as np

from repro.core.formats import FMT_FILTERKV
from repro.core.kv import KVBatch, random_kv_batch
from repro.core.multiepoch import MultiEpochStore
from repro.fleet import Fleet, FleetSpec

VB = 16
NRANKS = 2


def run(coro):
    return asyncio.run(coro)


# Epochs are immutable, so a crashed shard's warm caches keep answering
# hot keys correctly — which hides the crash.  Failover tests pin the
# caches so cold reads must touch the (downed) device.
TINY_CACHES = dict(result_cache_entries=1, table_cache_entries=1)


def make_dumps(epochs=2, records=240, seed=7):
    """Per-epoch fleet dumps plus the newest-wins ground truth."""
    rng = np.random.default_rng(seed)
    dumps, truth = [], {}
    for _ in range(epochs):
        b = random_kv_batch(records, VB, rng)
        dumps.append(b)
        truth.update((int(k), b.value_of(i)) for i, k in enumerate(b.keys))
    return dumps, truth


def build_fleet(
    nshards=3, rf=2, epochs=2, records=240, seed=7, ingest=True, **spec_kwargs
):
    """A fleet plus its dumps and truth; ``ingest=False`` defers the
    dumps to the caller (e.g. to force per-epoch aux backends)."""
    spec = FleetSpec(
        nshards=nshards,
        rf=rf,
        nranks=NRANKS,
        value_bytes=VB,
        seed=seed,
        **spec_kwargs,
    )
    fleet = Fleet(spec)
    dumps, truth = make_dumps(epochs=epochs, records=records, seed=seed)
    if ingest:
        for d in dumps:
            fleet.ingest(d)
    return fleet, dumps, truth


def merged_store(dumps, seed=7, fmt=FMT_FILTERKV, aux_policy=None):
    """The oracle: one unsharded store ingesting the same dumps."""
    store = MultiEpochStore(
        nranks=NRANKS, fmt=fmt, value_bytes=VB, seed=seed, aux_policy=aux_policy
    )
    for d in dumps:
        writer = np.arange(len(d)) % NRANKS
        store.write_epoch(
            [
                KVBatch(d.keys[writer == r], d.values[writer == r])
                for r in range(NRANKS)
            ]
        )
    return store


def absent_keys(truth, n=16, seed=5):
    """Keys guaranteed absent from every epoch."""
    rng = np.random.default_rng(seed)
    out = []
    while len(out) < n:
        k = int(rng.integers(0, 2**63))
        if k not in truth:
            out.append(k)
    return out
