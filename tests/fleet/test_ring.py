"""Consistent-hash ring invariants.

The ring is pure arithmetic shared by ingest, router, and tests — these
pin the properties everything else assumes: determinism, scalar/vector
agreement, distinct replica sets, tolerable balance, and the 1/N
movement bound that makes the hashing "consistent" at all.
"""

import numpy as np
import pytest

from repro.fleet import HashRing

KEYS = np.random.default_rng(3).integers(0, 2**63, size=4000, dtype=np.uint64)


def test_deterministic_and_seed_sensitive():
    a = HashRing([0, 1, 2], vnodes=32, seed=9)
    b = HashRing([0, 1, 2], vnodes=32, seed=9)
    c = HashRing([0, 1, 2], vnodes=32, seed=10)
    assert np.array_equal(a.owners_many(KEYS, rf=2), b.owners_many(KEYS, rf=2))
    assert not np.array_equal(a.primary_of(KEYS), c.primary_of(KEYS))


def test_scalar_vectorized_parity():
    ring = HashRing([3, 7, 11, 20, 21], vnodes=16, seed=1)
    many = ring.owners_many(KEYS[:500], rf=3)
    for i, k in enumerate(KEYS[:500]):
        assert ring.owners(int(k), rf=3) == list(many[i])


def test_replica_sets_distinct_and_clamped():
    ring = HashRing([0, 1, 2], vnodes=16)
    owners = ring.owners_many(KEYS, rf=3)
    assert all(len(set(row)) == 3 for row in owners[:200])
    # rf beyond the fleet degrades to "everyone", not an error.
    assert sorted(ring.owners(5, rf=99)) == [0, 1, 2]
    assert HashRing([4]).owners(5, rf=2) == [4]


def test_primary_balance():
    ring = HashRing(list(range(4)), vnodes=64)
    counts = np.bincount(ring.primary_of(KEYS), minlength=4)
    assert counts.max() / counts.mean() < 1.6, counts


def test_movement_bound_on_membership_change():
    before = HashRing(list(range(4)), vnodes=64).primary_of(KEYS)
    grown = HashRing(list(range(4)), vnodes=64)
    grown.add_shard(4)
    after = grown.primary_of(KEYS)
    moved = after != before
    # Only keys the new shard claims may move, and it should claim
    # roughly its fair 1/5 share.
    assert np.all(after[moved] == 4)
    assert 0.05 < moved.mean() < 0.45
    # Removing it restores the original placement exactly.
    grown.remove_shard(4)
    assert np.array_equal(grown.primary_of(KEYS), before)


def test_membership_errors():
    ring = HashRing([0, 1])
    with pytest.raises(ValueError):
        ring.add_shard(1)
    with pytest.raises(ValueError):
        ring.remove_shard(9)
    with pytest.raises(ValueError):
        HashRing([2, 2])
    ring.remove_shard(0)
    ring.remove_shard(1)
    with pytest.raises(ValueError):
        ring.owners(1)
