"""Router correctness: sharding must be invisible.

The core contract under test: a fleet answers every query byte-identically
to one unsharded store holding the same dumps — for every registered aux
backend, for epochs that mix backends, for absent keys, and regardless of
whether the router's aux views are fresh or stale (staleness may cost
ordering quality, never answers).
"""

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.core.auxtable import AUX_BACKENDS, AuxBackendPolicy
from repro.core.kv import random_kv_batch
from repro.fleet import CircuitBreaker
from repro.serve import ANY_EPOCH, NOT_FOUND, OK

from .conftest import VB, absent_keys, build_fleet, make_dumps, merged_store, run

BACKENDS = sorted(AUX_BACKENDS)


async def _assert_matches_oracle(fleet, oracle, truth, keys):
    async with fleet:
        for k in keys:
            r = await fleet.router.get(k, epoch=ANY_EPOCH)
            want = oracle.lookup(int(k))[0]
            if want is None:
                assert k not in truth
                assert r.status == NOT_FOUND, (k, r)
            else:
                assert r.status == OK, (k, r)
                assert r.value == want == truth[k], f"key {k} diverged"
        return fleet.router.stats()


@pytest.mark.parametrize("backend", BACKENDS)
def test_fleet_matches_merged_store(backend):
    policy = AuxBackendPolicy(candidates=(backend,))
    fleet, dumps, truth = build_fleet(seed=11, aux_policy=policy)
    oracle = merged_store(dumps, seed=11, aux_policy=policy)
    keys = sorted(truth)[::7] + absent_keys(truth)
    stats = run(_assert_matches_oracle(fleet, oracle, truth, keys))
    # FilterKV persists aux tables, so every plan was aux-shaped.
    assert stats["aux_routed"] == len(keys)
    assert stats["scatter"] == 0
    oracle.close()


def test_mixed_backend_epochs_match_merged_store():
    """One epoch per backend family (dynamic / static-filter /
    static-function): the router rebuilds each epoch's tables from its
    blob header alone, so a mixed-backend fleet routes like any other."""
    per_epoch = ["cuckoo", "xor", "csf"]
    fleet, dumps, truth = build_fleet(seed=31, epochs=len(per_epoch), ingest=False)
    oracle = merged_store(dumps[:0], seed=31)
    for backend, dump in zip(per_epoch, dumps):
        for node in fleet.shards.values():
            node.store.fmt = dataclasses.replace(
                node.store.fmt, aux_backend=backend
            )
        oracle.fmt = dataclasses.replace(oracle.fmt, aux_backend=backend)
        fleet.ingest(dump)
        writer = np.arange(len(dump)) % 2
        oracle.write_epoch([dump.select(writer == r) for r in range(2)])
    keys = sorted(truth)[::9] + absent_keys(truth, n=8)
    run(_assert_matches_oracle(fleet, oracle, truth, keys))
    oracle.close()


def test_stale_view_detected_refreshed_and_still_correct():
    fleet, dumps, truth = build_fleet(seed=13, epochs=1)

    async def go():
        async with fleet:
            router = fleet.router
            assert all(not v.stale for v in router.views.values())
            # Commit a new epoch behind the router's back.
            extra = random_kv_batch(120, VB, np.random.default_rng(77))
            fleet.ingest(extra)
            new_truth = {
                int(k): extra.value_of(i) for i, k in enumerate(extra.keys)
            }
            refreshes_before = router.stats()["aux_refreshes"]
            for k in sorted(new_truth)[:20]:
                r = await router.get(k, epoch=ANY_EPOCH)
                # Correctness never depends on view freshness: the ring
                # owners hold the new epoch whether or not the router has
                # heard of it.
                assert r.status == OK and r.value == new_truth[k]
            st = router.stats()
            assert st["stale_detected"] >= 1
            # The piggybacked token drift scheduled background re-pulls;
            # let them run, then the views must claim the new epoch.
            await asyncio.sleep(0.05)
            assert all(not v.stale for v in router.views.values())
            assert router.stats()["aux_refreshes"] > refreshes_before
            newest = max(max(v.epochs) for v in router.views.values())
            assert newest == 1

    run(go())


def test_plan_prefers_claimants_and_never_leaves_the_owner_set():
    fleet, dumps, truth = build_fleet(seed=29, epochs=1)

    async def go():
        async with fleet:
            router = fleet.router
            for k in sorted(truth)[::17]:
                owners = fleet.ring.owners(int(k), fleet.rf)
                order, used_aux = router.plan(int(k))
                assert used_aux
                assert sorted(order) == sorted(owners)
                # Replication: every owner holds the key, aux tables have
                # no false negatives, so the front of the plan claims it.
                assert router.views[order[0]].claim(int(k)) >= 0
            # Mark every view stale: planning degrades to pure ring order.
            for v in router.views.values():
                v.stale = True
            k = next(iter(truth))
            order, used_aux = router.plan(k)
            assert not used_aux
            assert order == fleet.ring.owners(k, fleet.rf)
            scatter_before = router.stats()["scatter"]
            r = await router.get(k, epoch=ANY_EPOCH)
            assert r.status == OK and r.value == truth[k]
            assert router.stats()["scatter"] == scatter_before + 1

    run(go())


def test_router_memory_is_aux_sized():
    """The router's data-plane memory is the rebuilt aux tables — the
    same order as the sealed blobs it pulled, nowhere near the data."""
    fleet, dumps, truth = build_fleet(seed=41)

    async def go():
        async with fleet:
            router = fleet.router
            blob = router.aux_blob_bytes
            resident = router.aux_resident_bytes
            assert blob > 0 and resident > 0
            assert resident <= 2 * blob
            data_bytes = sum(len(d) for d in dumps) * (8 + VB) * fleet.rf
            assert resident < data_bytes / 4

    run(go())


def test_circuit_breaker_lifecycle():
    t = [0.0]
    br = CircuitBreaker(threshold=2, cooldown_s=1.0, clock=lambda: t[0])
    assert br.state == "closed" and br.allow()
    br.record(False)
    assert br.state == "closed"
    br.record(False)
    assert br.state == "open" and not br.allow() and br.trips == 1
    t[0] = 1.0
    assert br.state == "half_open" and br.allow()
    br.record(False)  # the half-open trial failed: re-open immediately
    assert br.state == "open" and br.trips == 2
    t[0] = 2.5
    assert br.allow()
    br.record(True)
    assert br.state == "closed"
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
