"""Tests for crossover analysis."""

import pytest

from repro.analysis.tradeoffs import kv_size_crossover, storage_bandwidth_crossover
from repro.cluster.machines import NARWHAL, TRINITY_KNL
from repro.core.costmodel import WriteRunConfig, model_write_phase
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV


def test_fig10_crossover_exists_for_dataptr_vs_base():
    """Fig. 10a: base beats DataPtr at low storage bandwidth, loses at
    high — so a crossover bandwidth must exist, and the model must agree
    on both sides of it."""
    bw = storage_bandwidth_crossover(
        FMT_DATAPTR, FMT_BASE, TRINITY_KNL, nprocs=4096, kv_bytes=64, data_per_proc=488e6
    )
    assert bw is not None
    lo_m = TRINITY_KNL.with_storage_bandwidth(bw / 4)
    hi_m = TRINITY_KNL.with_storage_bandwidth(bw * 4)

    def s(fmt, m):
        return model_write_phase(
            WriteRunConfig(fmt=fmt, machine=m, nprocs=4096, kv_bytes=64, data_per_proc=488e6)
        ).slowdown

    assert s(FMT_DATAPTR, lo_m) > s(FMT_BASE, lo_m)  # base wins when slow
    assert s(FMT_DATAPTR, hi_m) < s(FMT_BASE, hi_m)  # dataptr wins when fast


def test_filterkv_dominates_dataptr_everywhere():
    """FilterKV writes less and ships less than DataPtr — no crossover."""
    bw = storage_bandwidth_crossover(
        FMT_FILTERKV, FMT_DATAPTR, TRINITY_KNL, nprocs=4096, kv_bytes=64, data_per_proc=488e6
    )
    assert bw is None


def test_fig9_kv_crossover_dataptr_vs_base():
    """Fig. 9: DataPtr loses to base at 16 B KV pairs and wins by 32 B —
    the crossover sits between."""
    kv = kv_size_crossover(
        FMT_DATAPTR, FMT_BASE, NARWHAL, nprocs=256, data_per_proc=960e6, residual_fraction=0.5
    )
    assert kv is not None
    assert 16 < kv <= 48


def test_filterkv_wins_at_smallest_kv():
    kv = kv_size_crossover(
        FMT_FILTERKV, FMT_BASE, NARWHAL, nprocs=256, data_per_proc=960e6, residual_fraction=0.5
    )
    assert kv == 9  # winning from the smallest legal record up


def test_no_crossover_returns_none_for_kv():
    # Base never overtakes FilterKV as KV size grows on this machine.
    kv = kv_size_crossover(
        FMT_BASE, FMT_FILTERKV, NARWHAL, nprocs=256, data_per_proc=960e6, residual_fraction=0.5
    )
    assert kv is None
