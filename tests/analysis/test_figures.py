"""Unit tests for the ASCII figure renderers."""

import pytest

from repro.analysis.figures import ascii_bars, ascii_series


def test_series_basic_shape():
    out = ascii_series({"a": [1, 2, 3]}, xlabels=[10, 20, 30], height=5)
    lines = out.splitlines()
    assert len(lines) == 5 + 3  # grid + axis + labels + legend
    assert sum(line.count("*") for line in lines[:5]) == 3  # grid marks only
    assert "a" in lines[-1]


def test_series_multiple_marks():
    out = ascii_series({"a": [1, 2], "b": [2, 1]}, xlabels=["x", "y"])
    assert "*" in out and "o" in out
    assert "a" in out and "b" in out


def test_series_logy():
    out = ascii_series({"a": [1, 10, 1000]}, xlabels=[1, 2, 3], logy=True, height=4)
    assert "1e+03" in out or "1000" in out


def test_series_title():
    out = ascii_series({"a": [1]}, xlabels=[1], title="Fig")
    assert out.startswith("Fig\n")


def test_series_validation():
    with pytest.raises(ValueError):
        ascii_series({}, xlabels=[1])
    with pytest.raises(ValueError):
        ascii_series({"a": [1, 2]}, xlabels=[1])
    with pytest.raises(ValueError):
        ascii_series({"a": [0, 1]}, xlabels=[1, 2], logy=True)


def test_bars():
    out = ascii_bars(["base", "filterkv"], [10, 2.5])
    lines = out.splitlines()
    assert lines[0].count("#") > lines[1].count("#")
    assert "10" in lines[0] and "2.5" in lines[1]


def test_bars_validation():
    with pytest.raises(ValueError):
        ascii_bars(["a"], [1, 2])
    with pytest.raises(ValueError):
        ascii_bars(["a"], [-1])
    assert ascii_bars([], []) == ""


def test_flat_series_does_not_crash():
    out = ascii_series({"a": [5, 5, 5]}, xlabels=[1, 2, 3], height=6)
    grid_lines = out.splitlines()[:6]
    assert sum(line.count("*") for line in grid_lines) == 3
