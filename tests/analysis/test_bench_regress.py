"""The CI perf-regression gate (`scripts/check_bench_regress.py`).

Runs the script the way CI does — as a subprocess over directories of
``repro.bench/v1`` documents — and also unit-tests the metric extraction
it is built on.
"""

import json
import pathlib
import subprocess
import sys

import pytest

SCRIPT = pathlib.Path(__file__).resolve().parents[2] / "scripts" / "check_bench_regress.py"


def _doc(qps: float, speedup: float) -> dict:
    return {
        "schema": "repro.bench/v1",
        "bench": "serve",
        "rows_detailed": [
            {"format": "filterkv", "arm": "served", "qps": qps, "speedup": speedup},
            {"format": "filterkv", "arm": "naive", "qps": qps / speedup},
        ],
        "latency_ms": {"p50": 0.1, "p99": 2.0},  # never gated
    }


def _write(d: pathlib.Path, name: str, doc: dict) -> None:
    d.mkdir(parents=True, exist_ok=True)
    (d / f"{name}.json").write_text(json.dumps(doc))


def _run(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *argv], capture_output=True, text=True
    )


def test_identical_results_pass(tmp_path):
    _write(tmp_path / "base", "serve", _doc(50_000, 12.0))
    _write(tmp_path / "cur", "serve", _doc(50_000, 12.0))
    p = _run("--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "cur"))
    assert p.returncode == 0, p.stdout + p.stderr
    assert "OK: no throughput regressions" in p.stdout


def test_synthetic_25_percent_drop_fails(tmp_path):
    _write(tmp_path / "base", "serve", _doc(50_000, 12.0))
    _write(tmp_path / "cur", "serve", _doc(50_000 * 0.75, 12.0 * 0.75))
    p = _run("--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "cur"))
    assert p.returncode == 1, p.stdout + p.stderr
    assert "REGRESSED" in p.stdout and "FAIL" in p.stdout
    assert "speedup" in p.stdout


def test_threshold_is_configurable(tmp_path):
    _write(tmp_path / "base", "serve", _doc(50_000, 12.0))
    _write(tmp_path / "cur", "serve", _doc(50_000 * 0.85, 12.0 * 0.85))  # -15%
    args = ("--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "cur"))
    assert _run(*args).returncode == 0  # default 20% tolerates it
    assert _run(*args, "--threshold", "0.10").returncode == 1


def test_relative_only_ignores_absolute_qps(tmp_path):
    # QPS halves (different machine) but speedups hold: relative mode
    # passes, absolute mode fails.
    _write(tmp_path / "base", "serve", _doc(50_000, 12.0))
    _write(tmp_path / "cur", "serve", _doc(25_000, 12.0))
    args = ("--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "cur"))
    assert _run(*args).returncode == 1
    assert _run(*args, "--relative-only").returncode == 0


def _amp_doc(amplification: float, qps: float = 1_000.0) -> dict:
    return {
        "schema": "repro.bench/v1",
        "bench": "compact",
        "rows_detailed": [
            {
                "format": "filterkv",
                "arm": "compacted",
                "read_amplification": amplification,
                "cold_lookups_per_s": qps,
            }
        ],
    }


def test_amplification_growth_fails_the_gate(tmp_path):
    """``amplification`` metrics gate in the *lower-is-better* direction:
    growth is the regression, shrinkage the improvement."""
    _write(tmp_path / "base", "compact", _amp_doc(1.1))
    _write(tmp_path / "cur", "compact", _amp_doc(1.1 * 1.4))  # reads grew 40%
    args = ("--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "cur"))
    p = _run(*args)
    assert p.returncode == 1, p.stdout + p.stderr
    assert "read_amplification" in p.stdout and "REGRESSED" in p.stdout
    # Relative-only mode (CI) still gates it: amplification is dimensionless.
    assert _run(*args, "--relative-only").returncode == 1


def test_amplification_shrinkage_is_an_improvement(tmp_path):
    _write(tmp_path / "base", "compact", _amp_doc(2.0))
    _write(tmp_path / "cur", "compact", _amp_doc(1.2))
    p = _run("--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "cur"))
    assert p.returncode == 0, p.stdout + p.stderr
    assert "improved" in p.stdout and "read_amplification" in p.stdout


def test_new_and_missing_benches_warn_but_do_not_fail(tmp_path):
    _write(tmp_path / "base", "serve", _doc(50_000, 12.0))
    _write(tmp_path / "base", "gone", _doc(10_000, 2.0))
    _write(tmp_path / "cur", "serve", _doc(50_000, 12.0))
    _write(tmp_path / "cur", "brand_new", _doc(10_000, 2.0))
    p = _run("--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "cur"))
    assert p.returncode == 0
    assert "gone.json in baseline" in p.stderr
    assert "brand_new.json is new" in p.stderr


def test_missing_directory_is_a_usage_error(tmp_path):
    p = _run("--baseline", str(tmp_path / "nope"), "--current", str(tmp_path))
    assert p.returncode == 2


def test_committed_smoke_baselines_load(tmp_path):
    """The baselines CI gates against must stay parseable and non-empty."""
    sys.path.insert(0, str(SCRIPT.parent))
    try:
        import check_bench_regress as cbr
    finally:
        sys.path.pop(0)
    baseline_dir = SCRIPT.parent.parent / "benchmarks" / "results" / "baseline_smoke"
    loaded = cbr.load_dir(baseline_dir)
    assert {"serve", "query", "ingest", "compact"} <= set(loaded)
    # The parallel-scaling baselines deliberately expose nothing the
    # checker matches: worker speedups (`parallel_x`) and merge-latency
    # ratios depend on the runner's core count, so gating them would gate
    # on hardware.  Every other baseline must carry real metrics.
    machine_bound = {
        "ingest_parallel",
        "query_parallel",
        "serve_parallel",
        "compact_background",
    }
    for bench, metrics in loaded.items():
        if bench in machine_bound:
            continue
        assert metrics, f"{bench} baseline has no throughput metrics"
    # Relative metrics exist for --relative-only mode to gate on.
    assert any("speedup" in k for k in loaded["serve"])
    assert any("amplification" in k for k in loaded["compact"])


def test_extraction_identity_keys_are_order_stable(tmp_path):
    sys.path.insert(0, str(SCRIPT.parent))
    try:
        import check_bench_regress as cbr
    finally:
        sys.path.pop(0)
    doc = _doc(50_000, 12.0)
    shuffled = dict(doc)
    shuffled["rows_detailed"] = list(reversed(doc["rows_detailed"]))
    assert cbr.extract_metrics(doc) == cbr.extract_metrics(shuffled)
    keys = set(cbr.extract_metrics(doc))
    assert "rows_detailed[format=filterkv,arm=served].qps" in keys
    assert "rows_detailed[format=filterkv,arm=served].speedup" in keys
    assert not any("p50" in k or "p99" in k for k in keys)  # latency never gated
