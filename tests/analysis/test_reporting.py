"""Unit tests for report rendering."""

from repro.analysis.reporting import banner, format_value, mb, percent, render_table


def test_render_table_alignment():
    out = render_table(["name", "val"], [["a", 1], ["bb", 22]])
    lines = out.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert all(len(line) == len(lines[0]) for line in lines)
    assert "bb" in lines[3] and "22" in lines[3]


def test_render_table_with_title():
    out = render_table(["x"], [[1]], title="Table I")
    assert out.startswith("Table I\n")


def test_render_empty_rows():
    out = render_table(["col"], [])
    assert "col" in out


def test_format_value():
    assert format_value(3.14159) == "3.14"
    assert format_value(123456.0) == "1.23e+05"
    assert format_value(0.0001) == "0.0001"
    assert format_value(0.0) == "0"
    assert format_value("x") == "x"
    assert format_value(42) == "42"


def test_percent():
    assert percent(1.016) == "102%"
    assert percent(0.5) == "50%"


def test_mb():
    assert mb(18_500_000) == "18.5MB"


def test_banner():
    out = banner("hello")
    assert "hello" in out
    assert out.count("=") >= 80
