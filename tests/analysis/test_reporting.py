"""Unit tests for report rendering."""

from repro.analysis.reporting import banner, format_value, mb, percent, render_table


def test_render_table_alignment():
    out = render_table(["name", "val"], [["a", 1], ["bb", 22]])
    lines = out.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert all(len(line) == len(lines[0]) for line in lines)
    assert "bb" in lines[3] and "22" in lines[3]


def test_render_table_with_title():
    out = render_table(["x"], [[1]], title="Table I")
    assert out.startswith("Table I\n")


def test_render_empty_rows():
    out = render_table(["col"], [])
    assert "col" in out


def test_format_value():
    assert format_value(3.14159) == "3.14"
    assert format_value(123456.0) == "1.23e+05"
    assert format_value(0.0001) == "0.0001"
    assert format_value(0.0) == "0"
    assert format_value("x") == "x"
    assert format_value(42) == "42"


def test_percent():
    assert percent(1.016) == "102%"
    assert percent(0.5) == "50%"


def test_mb():
    assert mb(18_500_000) == "18.5MB"


def test_banner():
    out = banner("hello")
    assert "hello" in out
    assert out.count("=") >= 80


def test_format_value_edge_cases():
    assert format_value(-0.0) == "0"  # negative zero is still zero
    assert format_value(1234.5) == "1.23e+03"
    assert format_value(0.009999) == "0.01"
    # %.2f rounding must not leak "1000.00" next to "1e+03" peers
    assert format_value(999.996) == "1e+03"
    assert format_value(-999.996) == "-1e+03"
    assert format_value(999.99) == "999.99"
    assert format_value(-1234.5) == "-1.23e+03"


def test_table_data_payload():
    from repro.analysis.reporting import table_data

    data = table_data(["a", "b"], [[1, 2.5], ["x", None]], title="T")
    assert data == {"title": "T", "columns": ["a", "b"], "rows": [[1, 2.5], ["x", None]]}


def test_table_data_unwraps_numpy_scalars():
    import numpy as np

    from repro.analysis.reporting import table_data

    data = table_data(["n"], [[np.int64(7)], [np.float32(0.5)]])
    assert data["rows"] == [[7], [0.5]]
    assert all(type(v) in (int, float) for row in data["rows"] for v in row)


def test_table_artifact_text_matches_render():
    from repro.analysis.reporting import table_artifact

    text, data = table_artifact(["h"], [[1]], title="t")
    assert text == render_table(["h"], [[1]], title="t")
    assert data["columns"] == ["h"]


def test_bench_document_envelope():
    from repro.analysis.reporting import BENCH_SCHEMA, bench_document

    doc = bench_document("fig7a", {"columns": ["x"], "rows": [[1]], "title": ""})
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["bench"] == "fig7a"
    assert doc["rows"] == [[1]]
