"""The calibration audit must stay green: every tuned constant still hits
the paper anchor it was tuned for."""

from repro.analysis.calibration import audit


def test_all_calibration_anchors_hold():
    checks = audit()
    assert len(checks) >= 6
    failures = [str(c) for c in checks if not c.ok]
    assert not failures, "calibration drifted:\n" + "\n".join(failures)


def test_check_formatting():
    checks = audit()
    for c in checks:
        s = str(c)
        assert c.name in s and ("ok" in s or "OFF" in s)
