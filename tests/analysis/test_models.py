"""Tests for the closed-form models against Table I and Fig. 7a."""

import pytest

from repro.analysis.models import (
    TABLE1_MACHINES,
    bloom_amplification,
    bloom_bytes_per_key_for_bound,
    cuckoo_amplification,
)


def test_table1_budgets_close_to_paper():
    """Our standard Bloom math lands within ~0.2 B of the paper's Table I."""
    for m in TABLE1_MACHINES:
        assert m.b2() == pytest.approx(m.paper_b2, abs=0.25), m.name
        assert m.b10() == pytest.approx(m.paper_b10, abs=0.25), m.name


def test_table1_shape():
    """b10 < b2 (looser bound, fewer bits); bigger machines need more."""
    for m in TABLE1_MACHINES:
        assert m.b10() < m.b2()
    trinity = TABLE1_MACHINES[0]
    theta = TABLE1_MACHINES[-1]
    assert trinity.b2() > theta.b2()
    # All budgets are ~3 bytes — the paper's headline vs 12-byte pointers.
    assert all(2.0 < m.b2() < 4.0 for m in TABLE1_MACHINES)


def test_bound_validation():
    with pytest.raises(ValueError):
        bloom_bytes_per_key_for_bound(1000, 1.0)
    assert bloom_bytes_per_key_for_bound(1, 2) == 0.0
    assert bloom_bytes_per_key_for_bound(2, 5) == 0.0  # bound already ≥ N


def test_bloom_amplification_grows_with_n():
    """Fig. 7a: with 4+log2(N) bits/key, amplification keeps rising."""
    import math

    amps = []
    for q in (10, 14, 18, 22, 24):
        n = 1 << q
        amps.append(bloom_amplification(n, 4 + math.log2(n)))
    assert all(a < b for a, b in zip(amps, amps[1:]))
    # Paper's Fig. 7a ends around ~25 partitions/query at 16 M.
    assert 10 < amps[-1] < 40


def test_bloom_amplification_1p44_budget_is_bounded():
    """§IV-C: 4 + 1.44·log2(N) bits/key bounds amplification."""
    import math

    amps = [bloom_amplification(1 << q, 4 + 1.44 * math.log2(1 << q)) for q in (10, 16, 24)]
    assert max(amps) - min(amps) < 1.0


def test_cuckoo_amplification_near_2():
    """Fig. 7a: Fmt-Cuckoo sits around 2 partitions/query, flat in N."""
    a = cuckoo_amplification(fp_bits=4)
    assert 1.5 < a < 2.5


def test_cuckoo_amplification_falls_with_fp_bits():
    amps = [cuckoo_amplification(b) for b in (2, 4, 8, 12)]
    assert all(x > y for x, y in zip(amps, amps[1:]))
    assert amps[-1] < 1.01


def test_cuckoo_amplification_validation():
    with pytest.raises(ValueError):
        cuckoo_amplification(4, load=1.5)
    with pytest.raises(ValueError):
        bloom_amplification(0, 10)
