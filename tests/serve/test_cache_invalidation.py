"""Cache correctness across epoch commits (the versioning story).

A serving tier must never return a stale value after a new epoch commits.
`repro.serve` guarantees this by *versioning* rather than invalidating:
cache keys carry the resolved epoch, and an unqualified query resolves to
the newest epoch at admission — so a commit shifts resolution away from
every existing entry.  These tests serve a key, overwrite it in a new
epoch, and assert the new value is returned; plus the explicit-epoch and
`invalidate` behaviors around that guarantee.
"""

import numpy as np

from repro.core.kv import KVBatch
from repro.serve import NOT_FOUND, OK, QueryService

from .conftest import ALL_FORMATS, build_store, run


def _batches(store, keys, fill):
    """One dump whose values are all ``fill`` bytes, keys spread evenly."""
    nranks = store.nranks
    per = len(keys) // nranks
    vals = np.full((len(keys), store.value_bytes), fill, dtype=np.uint8)
    return [
        KVBatch(keys[r * per : (r + 1) * per], vals[r * per : (r + 1) * per])
        for r in range(nranks)
    ]


def _fresh_store(fmt):
    store, _ = build_store(fmt, nranks=4, records=1, seed=21)  # shape only
    from repro.core.multiepoch import MultiEpochStore

    return MultiEpochStore(nranks=4, fmt=fmt, value_bytes=24, seed=21)


def test_commit_invalidates_served_values():
    rng = np.random.default_rng(77)
    keys = rng.integers(0, 2**63, size=64, dtype=np.uint64)
    for fmt in ALL_FORMATS:
        store = _fresh_store(fmt)
        store.write_epoch(_batches(store, keys, fill=0xAA))

        async def main(store=store):
            async with QueryService(store) as svc:
                key = int(keys[5])
                old = await svc.get(key)
                cached = await svc.get(key)
                assert old.value == b"\xaa" * 24 and cached.cached

                # Overwrite every key in a new epoch while serving.
                store.write_epoch(_batches(store, keys, fill=0xBB))

                new = await svc.get(key)
                assert new.value == b"\xbb" * 24, f"stale value served ({fmt.name})"
                assert new.epoch == 1 and not new.cached
                # The new answer is cached under the new epoch...
                again = await svc.get(key)
                assert again.cached and again.value == b"\xbb" * 24
                # ...and the old epoch stays addressable and correct.
                historical = await svc.get(key, epoch=0)
                assert historical.value == b"\xaa" * 24 and historical.epoch == 0

        run(main())


def test_commit_shifts_negative_outcomes_too():
    """A key absent from epoch 0 but present in epoch 1 must stop
    answering not_found once epoch 1 commits — cached misses are
    versioned exactly like cached hits."""
    rng = np.random.default_rng(78)
    keys0 = rng.integers(0, 2**63, size=64, dtype=np.uint64)
    keys1 = rng.integers(0, 2**63, size=64, dtype=np.uint64)
    from repro.core.formats import FMT_FILTERKV

    store = _fresh_store(FMT_FILTERKV)
    store.write_epoch(_batches(store, keys0, fill=0x01))

    async def main():
        async with QueryService(store) as svc:
            probe = int(keys1[3])
            assert (await svc.get(probe)).status == NOT_FOUND
            assert (await svc.get(probe)).cached  # the miss is cached

            store.write_epoch(_batches(store, keys1, fill=0x02))

            r = await svc.get(probe)
            assert r.status == OK and r.value == b"\x02" * 24

    run(main())


def test_explicit_invalidate_drops_all_cached_state():
    rng = np.random.default_rng(79)
    keys = rng.integers(0, 2**63, size=64, dtype=np.uint64)
    from repro.core.formats import FMT_FILTERKV

    store = _fresh_store(FMT_FILTERKV)
    store.write_epoch(_batches(store, keys, fill=0x0C))

    async def main():
        async with QueryService(store) as svc:
            for k in keys[:20]:
                await svc.get(int(k))
            assert len(svc._rcache) == 20
            svc.invalidate()
            assert len(svc._rcache) == 0 and len(svc._negcache) == 0
            assert not svc._engines
            # Still serves correctly afterwards (engines rebuild lazily).
            r = await svc.get(int(keys[0]))
            assert r.status == OK and r.value == b"\x0c" * 24 and not r.cached

    run(main())
