"""Wire protocol: sealed frames, TCP server/clients, in-proc adapter."""

import asyncio

import pytest

from repro.core.formats import FMT_FILTERKV
from repro.serve import ERROR, NOT_FOUND, OK, InprocClient, QueryService, ServeServer, TCPClient
from repro.serve.proto import (
    ERR_UNSUPPORTED_VERSION,
    MAX_FRAME_BYTES,
    PROTO_VERSION,
    ProtocolError,
    encode_frame,
    read_frame,
)

from .conftest import run, shared_store


def _fed_reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def test_frame_round_trip():
    message = {"id": 3, "op": "get", "key": 17, "epoch": None}

    async def main():
        frame = encode_frame(message)
        reader = _fed_reader(frame + encode_frame({"id": 4}))
        assert await read_frame(reader) == message
        assert await read_frame(reader) == {"id": 4}
        assert await read_frame(reader) is None  # clean EOF

    run(main())


def test_corrupted_frame_is_rejected():
    async def main():
        frame = bytearray(encode_frame({"id": 1, "op": "ping"}))
        frame[-1] ^= 0x40  # flip a bit inside the seal checksum
        with pytest.raises(ProtocolError):
            await read_frame(_fed_reader(bytes(frame)))

    run(main())


def test_truncated_frame_is_rejected():
    async def main():
        frame = encode_frame({"id": 1, "op": "ping"})
        with pytest.raises(ProtocolError):
            await read_frame(_fed_reader(frame[:-3]))

    run(main())


def test_oversized_frame_is_rejected():
    async def main():
        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "little")
        with pytest.raises(ProtocolError):
            await read_frame(_fed_reader(header + b"x" * 16))

    run(main())


def test_tcp_round_trip_all_formats(fmt):
    store, truth = shared_store(fmt)
    expected = truth[0]
    keys = list(expected)[:30]

    async def main():
        service = QueryService(store)
        async with ServeServer(service) as server:
            async with TCPClient(server.host, server.port) as client:
                assert await client.ping()
                responses = await asyncio.gather(*(client.get(k) for k in keys))
                for key, r in zip(keys, responses):
                    assert r.status == OK and r.value == expected[key]
                miss = await client.get(1)
                assert miss.status == NOT_FOUND and miss.value is None
                stats = await client.stats()
                assert stats["requests"][OK] >= len(keys)

    run(main())


def test_concurrent_requests_on_one_connection_coalesce():
    store, truth = shared_store(FMT_FILTERKV)
    key = next(iter(truth[0]))

    async def main():
        service = QueryService(store)
        async with ServeServer(service) as server:
            async with TCPClient(server.host, server.port) as client:
                responses = await asyncio.gather(*(client.get(key) for _ in range(8)))
                assert all(r.status == OK for r in responses)
                # One connection, eight in-flight frames, one store probe.
                assert service.metrics.total("reader.queries") == 1
                assert service.metrics.total("serve.coalesced") == 7

    run(main())


def test_many_clients_one_server():
    store, truth = shared_store(FMT_FILTERKV)
    expected = truth[0]
    keys = list(expected)[:24]

    async def main():
        service = QueryService(store)
        async with ServeServer(service) as server:
            clients = [
                await TCPClient(server.host, server.port).connect() for _ in range(4)
            ]
            try:
                chunks = [keys[i::4] for i in range(4)]
                results = await asyncio.gather(
                    *(
                        asyncio.gather(*(c.get(k) for k in chunk))
                        for c, chunk in zip(clients, chunks)
                    )
                )
                for chunk, responses in zip(chunks, results):
                    for key, r in zip(chunk, responses):
                        assert r.status == OK and r.value == expected[key]
            finally:
                for c in clients:
                    await c.close()

    run(main())


def test_unknown_op_yields_error_frame():
    store, _ = shared_store(FMT_FILTERKV)

    async def main():
        service = QueryService(store)
        async with ServeServer(service) as server:
            async with TCPClient(server.host, server.port) as client:
                reply = await client._call({"op": "bogus"})
                assert reply["status"] == ERROR and "bogus" in reply["detail"]
                # The connection survives a bad op.
                assert await client.ping()

    run(main())


def test_unsupported_version_yields_error_frame():
    store, truth = shared_store(FMT_FILTERKV)
    key = next(iter(truth[0]))

    async def main():
        service = QueryService(store)
        async with ServeServer(service) as server:
            async with TCPClient(server.host, server.port) as client:
                reply = await client._call(
                    {"op": "get", "key": key, "v": PROTO_VERSION + 1}
                )
                assert reply["status"] == ERROR
                assert reply["error"]["code"] == ERR_UNSUPPORTED_VERSION
                assert not reply["error"]["retryable"]  # caller bug, not shard state
                # Same connection, current version: answered normally.
                r = await client.get(key)
                assert r.status == OK and r.value == truth[0][key]

    run(main())


def test_malformed_request_yields_error_not_crash():
    store, _ = shared_store(FMT_FILTERKV)

    async def main():
        service = QueryService(store)
        async with ServeServer(service) as server:
            async with TCPClient(server.host, server.port) as client:
                reply = await client._call({"op": "get"})  # no key
                assert reply["status"] == ERROR
                assert await client.ping()

    run(main())


def test_inproc_client_matches_tcp_surface():
    store, truth = shared_store(FMT_FILTERKV)
    key = next(iter(truth[0]))

    async def main():
        service = QueryService(store)
        async with InprocClient(service) as client:
            assert await client.ping()
            r = await client.get(key)
            assert r.status == OK and r.value == truth[0][key]
            assert (await client.stats())["requests"][OK] == 1
        await service.close()

    run(main())
