"""Shared fixtures for the serving-tier tests.

There is no async test plugin in the environment, so every test drives
its coroutine with ``asyncio.run`` via the `run` helper; stores are built
once per (format, shape) and memoized module-wide because ingestion
dominates test wall time.
"""

import asyncio

import numpy as np
import pytest

from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.multiepoch import MultiEpochStore

ALL_FORMATS = [FMT_BASE, FMT_DATAPTR, FMT_FILTERKV]


def run(coro):
    return asyncio.run(coro)


def build_store(fmt, nranks=8, records=200, epochs=1, value_bytes=24, seed=7):
    """A committed store plus per-epoch ground truth.

    Returns ``(store, truth)`` where ``truth[epoch]`` maps every key the
    epoch holds to its value bytes.  Keys are uniformly random, so the
    writer rank is uncorrelated with the hash owner — the regime where
    FilterKV actually produces false candidates.
    """
    store = MultiEpochStore(nranks=nranks, fmt=fmt, value_bytes=value_bytes, seed=seed)
    rng = np.random.default_rng(seed)
    truth = {}
    for e in range(epochs):
        batches = [random_kv_batch(records, value_bytes, rng) for _ in range(nranks)]
        store.write_epoch(batches)
        truth[e] = {
            int(k): b.value_of(i) for b in batches for i, k in enumerate(b.keys)
        }
    return store, truth


_STORES: dict = {}


def shared_store(fmt, **kwargs):
    """Memoized `build_store` — callers must treat the store as read-only."""
    key = (fmt.name, tuple(sorted(kwargs.items())))
    if key not in _STORES:
        _STORES[key] = build_store(fmt, **kwargs)
    return _STORES[key]


@pytest.fixture(params=ALL_FORMATS, ids=lambda f: f.name)
def fmt(request):
    return request.param
