"""Serving over epochs whose aux tables use *different* backends.

The flush-time tournament (`AuxBackendPolicy`) means a store's epochs
can legitimately disagree on aux backend — an early epoch sealed with a
cuckoo table, a later one with a CSF.  These tests pin the contract that
the backend is a per-epoch implementation detail:

* the manifest records which backend(s) each epoch sealed;
* a cold `attach` reloads every epoch's aux from its blob header alone
  (no format-level default involved) and answers byte-identically;
* compaction over mixed epochs re-runs the tournament and serves
  byte-identical answers before and after the swap;
* a crash during the aux seal of a new epoch loses nothing already
  committed, whatever mix of backends the committed epochs hold.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.auxtable import AuxBackendPolicy
from repro.core.formats import FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.multiepoch import MultiEpochStore
from repro.faults import CrashPoint, FaultPlan, FaultyStorageDevice
from repro.serve import ANY_EPOCH, QueryService

from .conftest import run  # noqa: F401

VB = 20
NRANKS = 4
# One epoch per backend: dynamic, static-filter, static-function.
EPOCH_BACKENDS = ["cuckoo", "xor", "csf"]


def _grow(store, rng, n=100):
    batches = [random_kv_batch(n, VB, rng) for _ in range(NRANKS)]
    store.write_epoch(batches)
    return {int(k): b.value_of(i) for b in batches for i, k in enumerate(b.keys)}


def _mixed_store(seed=41, device=None, backends=EPOCH_BACKENDS):
    """One epoch per named backend, forced via the format's default (no
    policy), so the mix is deterministic."""
    store = MultiEpochStore(
        nranks=NRANKS,
        fmt=dataclasses.replace(FMT_FILTERKV, aux_backend=backends[0]),
        value_bytes=VB,
        seed=seed,
        **({"device": device} if device is not None else {}),
    )
    rng = np.random.default_rng(seed)
    truth = {}
    for backend in backends:
        store.fmt = dataclasses.replace(store.fmt, aux_backend=backend)
        truth.update(_grow(store, rng))
    return store, truth, rng


def test_manifest_records_per_epoch_backend():
    store, _, _ = _mixed_store()
    recorded = [e.aux_backend for e in store.manifest.epochs]
    assert recorded == EPOCH_BACKENDS
    store.close()


def test_policy_backend_lands_in_manifest():
    store = MultiEpochStore(
        nranks=NRANKS,
        fmt=FMT_FILTERKV,
        value_bytes=VB,
        seed=43,
        aux_policy=AuxBackendPolicy(),
    )
    _grow(store, np.random.default_rng(43))
    (info,) = store.manifest.epochs
    assert info.aux_backend == "csf"  # the tournament winner at this shape
    store.close()


def test_cold_attach_serves_mixed_epochs_byte_identically():
    device_store, truth, _ = _mixed_store()
    device = device_store.device
    hot = {k: device_store.lookup(k) for k in sorted(truth)[::7]}
    device_store.close()

    attached = MultiEpochStore.attach(device)
    assert [e.aux_backend for e in attached.manifest.epochs] == EPOCH_BACKENDS
    for k, (value, _, _) in hot.items():
        got, _, _ = attached.lookup(k)
        assert got == value == truth[k], f"key {k} changed across attach"
    attached.close()


def test_serving_through_mixed_epoch_compaction():
    store, truth, _ = _mixed_store()
    # Give the post-compaction rebuild a tournament to run, so the merged
    # epoch's backend is the policy winner, not the last format default.
    store.aux_policy = AuxBackendPolicy()

    async def main():
        async with QueryService(store, max_inflight=4096) as svc:
            keys = sorted(truth)[::5] + [1]  # plus a guaranteed miss
            before = {k: await svc.get(k, epoch=ANY_EPOCH) for k in keys}
            report = store.compact()
            merged = next(e for e in store.manifest.epochs if e.epoch == report.merged_epoch)
            assert merged.aux_backend is not None
            assert set(merged.aux_backend.split(",")) <= set(AuxBackendPolicy().candidates)
            for k in keys:
                r = await svc.get(k, epoch=ANY_EPOCH)
                assert r.status == before[k].status
                assert r.value == before[k].value, f"key {k} changed across compaction"
    run(main())
    store.close()


@pytest.mark.parametrize("seed", range(3))
def test_crash_during_aux_seal_preserves_committed_mix(seed):
    """Arm a crash on the first aux extent of the *next* epoch: committed
    epochs (one per backend) must survive and answer byte-identically."""
    device = FaultyStorageDevice(FaultPlan(seed=seed))
    store, truth, rng = _mixed_store(seed=50 + seed, device=device)
    committed = list(store.epochs)
    nxt = store.manifest.next_epoch
    device.plan.crash_at(0, pattern=f"aux.{nxt:03d}.*")
    store.fmt = dataclasses.replace(store.fmt, aux_backend="csf")
    with pytest.raises(CrashPoint):
        _grow(store, rng)
    store.close()
    device.plan.specs = [s for s in device.plan.specs if s.fired]

    recovered, _ = MultiEpochStore.recover(device)
    assert recovered is not None
    assert recovered.epochs == committed, "a crashed seal disturbed committed epochs"
    assert [
        e.aux_backend for e in recovered.manifest.epochs
    ] == EPOCH_BACKENDS
    for k in sorted(truth)[:: max(1, len(truth) // 40)]:
        value, _, _ = recovered.lookup(k)
        assert value == truth[k], f"key {k} wrong after crashed aux seal"
    # The dataset is still writable: the retried epoch commits cleanly.
    more = _grow(recovered, rng)
    for k, v in list(more.items())[:10]:
        value, _, _ = recovered.lookup(k)
        assert value == v
    recovered.close()
