"""Unit tests for the serving tier's LRU and negative caches."""

import pytest

from repro.obs import MetricsRegistry
from repro.serve import LRUCache, NegativeCache


def test_lru_hit_miss_and_eviction_order():
    m = MetricsRegistry()
    cache = LRUCache(2, m, name="t.cache")
    assert cache.lookup("a") == (False, None)
    cache.insert("a", 1)
    cache.insert("b", 2)
    assert cache.lookup("a") == (True, 1)  # refreshes a
    cache.insert("c", 3)  # evicts b, the coldest
    assert "b" not in cache
    assert cache.lookup("b") == (False, None)
    assert cache.lookup("a") == (True, 1)
    assert cache.lookup("c") == (True, 3)
    assert len(cache) == 2
    assert m.total("t.cache.hits") == 3
    assert m.total("t.cache.misses") == 2
    assert m.total("t.cache.evictions") == 1


def test_lru_insert_refreshes_existing_key():
    cache = LRUCache(2)
    cache.insert("a", 1)
    cache.insert("b", 2)
    cache.insert("a", 10)  # refresh, not growth
    cache.insert("c", 3)  # now b is coldest
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.lookup("a") == (True, 10)


def test_lru_clear_and_capacity_validation():
    cache = LRUCache(4)
    cache.insert("a", 1)
    cache.clear()
    assert len(cache) == 0
    with pytest.raises(ValueError):
        LRUCache(0)


def test_negative_cache_remembers_refutations():
    m = MetricsRegistry()
    neg = NegativeCache(16, m)
    assert not neg.refuted(0, 42, 3)  # unknown: must probe
    neg.add(0, 42, 3)
    assert neg.refuted(0, 42, 3)
    # The triple is exact: other epoch/key/rank are unaffected.
    assert not neg.refuted(1, 42, 3)
    assert not neg.refuted(0, 42, 4)
    assert not neg.refuted(0, 43, 3)
    assert m.total("serve.negative_cache.skipped_probes") == 1
    assert m.total("serve.negative_cache.inserts") == 1


def test_negative_cache_bounded_lru():
    m = MetricsRegistry()
    neg = NegativeCache(3, m)
    for rank in range(3):
        neg.add(0, 1, rank)
    assert neg.refuted(0, 1, 0)  # refresh rank 0
    neg.add(0, 1, 9)  # evicts rank 1, the coldest
    assert len(neg) == 3
    assert neg.refuted(0, 1, 0) and neg.refuted(0, 1, 2) and neg.refuted(0, 1, 9)
    assert not neg.refuted(0, 1, 1)
    assert m.total("serve.negative_cache.evictions") == 1


def test_negative_cache_clear():
    neg = NegativeCache(8)
    neg.add(0, 1, 2)
    neg.clear()
    assert len(neg) == 0
    assert not neg.refuted(0, 1, 2)
