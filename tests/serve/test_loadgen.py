"""Load generator: sampling distributions, loop disciplines, reporting."""

import collections

import numpy as np
import pytest

from repro.core.formats import FMT_FILTERKV
from repro.serve import InprocClient, KeySampler, QueryService, run_load

from .conftest import run, shared_store


def test_sampler_is_deterministic_and_closed_over_universe():
    keys = np.arange(100, 200)
    a = KeySampler(keys, "zipfian", seed=5).sample(500)
    b = KeySampler(keys, "zipfian", seed=5).sample(500)
    assert np.array_equal(a, b)
    assert set(a) <= set(range(100, 200))


def test_zipfian_is_skewed_uniform_is_not():
    keys = np.arange(1000)
    zipf = collections.Counter(KeySampler(keys, "zipfian", theta=1.0, seed=1).sample(5000))
    unif = collections.Counter(KeySampler(keys, "uniform", seed=1).sample(5000))
    # Hot-key mass: the top key dominates under Zipf, not under uniform.
    assert zipf.most_common(1)[0][1] > 250
    assert unif.most_common(1)[0][1] < 50
    # Zipf at theta=1 still touches a long tail.
    assert len(zipf) > 100


def test_zipfian_hot_set_is_shuffled():
    # The hottest key must not systematically be the smallest key.
    tops = set()
    for seed in range(5):
        counts = collections.Counter(
            KeySampler(np.arange(1000), "zipfian", seed=seed).sample(2000)
        )
        tops.add(counts.most_common(1)[0][0])
    assert tops != {0}


def test_sampler_validation():
    with pytest.raises(ValueError):
        KeySampler(np.array([]), "zipfian")
    with pytest.raises(ValueError):
        KeySampler(np.arange(4), "pareto")
    with pytest.raises(ValueError):
        KeySampler(np.arange(4)).interarrival_s(10, 0)


def test_interarrival_matches_rate():
    gaps = KeySampler(np.arange(8), seed=2).interarrival_s(20_000, rate_qps=1000.0)
    assert gaps.shape == (20_000,)
    assert abs(gaps.mean() - 1e-3) < 1e-4  # Poisson at 1000 qps


def test_closed_loop_reports_correctness(fmt):
    store, truth = shared_store(fmt)
    expected = truth[0]
    sampler = KeySampler(np.fromiter(expected, dtype=np.int64), "zipfian", seed=4)

    async def main():
        async with QueryService(store) as svc:
            report = await run_load(
                InprocClient(svc),
                sampler,
                400,
                mode="closed",
                concurrency=8,
                expected=expected,
            )
            assert report.requests == 400
            assert report.checked == 400 and report.incorrect == 0
            assert report.answered == 400 and report.shed == 0
            assert report.qps > 0
            d = report.to_dict()
            assert d["latency_ms"]["p99"] >= d["latency_ms"]["p50"]
            assert "qps" in d and "statuses" in d
            assert "closed/zipfian" in report.summary()

    run(main())


def test_open_loop_poisson_arrivals():
    store, truth = shared_store(FMT_FILTERKV)
    expected = truth[0]
    sampler = KeySampler(np.fromiter(expected, dtype=np.int64), "uniform", seed=4)

    async def main():
        async with QueryService(store) as svc:
            report = await run_load(
                InprocClient(svc),
                sampler,
                200,
                mode="open",
                rate_qps=20_000.0,
                expected=expected,
            )
            assert report.requests == 200
            assert report.incorrect == 0
            assert report.mode == "open"

    run(main())


def test_correctness_checker_actually_checks():
    """Feed the checker a wrong ground truth: it must flag mismatches —
    otherwise 'zero incorrect' claims elsewhere are vacuous."""
    store, truth = shared_store(FMT_FILTERKV)
    wrong = {k: b"\x00" * 24 for k in truth[0]}
    sampler = KeySampler(np.fromiter(wrong, dtype=np.int64), "uniform", seed=4)

    async def main():
        async with QueryService(store) as svc:
            report = await run_load(
                InprocClient(svc), sampler, 100, concurrency=4, expected=wrong
            )
            assert report.incorrect == report.checked == 100

    run(main())


def test_run_load_validation():
    store, _ = shared_store(FMT_FILTERKV)
    sampler = KeySampler(np.arange(8), seed=0)

    async def main():
        async with QueryService(store) as svc:
            client = InprocClient(svc)
            with pytest.raises(ValueError):
                await run_load(client, sampler, 0)
            with pytest.raises(ValueError):
                await run_load(client, sampler, 10, mode="laps")
            with pytest.raises(ValueError):
                await run_load(client, sampler, 10, mode="open")  # no rate

    run(main())


def test_latency_excludes_client_queueing():
    """Latency is measured from send time; the arrival->send gap lands in
    queue_ms.  A client that stalls before sending must not inflate the
    latency quantiles."""

    class InstantClient:
        async def get(self, key, epoch=None, deadline_s=None):
            from repro.serve.service import ServeResponse

            return ServeResponse("ok", key, 0, value=b"x")

    async def main():
        sampler = KeySampler(np.arange(16), seed=0)
        return await run_load(InstantClient(), sampler, 50, concurrency=4)

    rep = run(main())
    assert rep.requests == 50
    # Instant service: send-time latency is tiny even though 4 workers
    # share one loop (arrival->send waits would be much larger).
    assert rep.latency_ms["p99"] < 5.0
    assert set(rep.queue_ms) == {"mean", "p50", "p90", "p95", "p99", "max"}
    assert rep.latency_ms["p95"] <= rep.latency_ms["p99"]


def test_open_loop_queue_wait_reflects_schedule_lag():
    """Generator drift must land in queue_ms, not vanish.  The enqueue
    stamp is anchored to the Poisson schedule: when the event loop stalls
    and the generator falls behind, later requests are stamped at their
    *scheduled* arrival, so the drift shows up as queue wait.  (Stamping
    "now" instead would silently report near-zero queue time here.)"""
    import time as _time

    from repro.serve.service import ServeResponse

    class StallOnceClient:
        def __init__(self):
            self.calls = 0

        async def get(self, key, epoch=None, deadline_s=None):
            self.calls += 1
            if self.calls == 1:
                _time.sleep(0.08)  # block the loop: schedule slips ~80ms
            return ServeResponse("ok", key, 0, value=b"x")

    async def main():
        sampler = KeySampler(np.arange(16), seed=0)
        return await run_load(
            StallOnceClient(), sampler, 20, mode="open", rate_qps=1000.0
        )

    rep = run(main())
    assert rep.requests == 20
    # All requests after the stall are >=30ms behind schedule.
    assert rep.queue_ms["p50"] > 30.0
    # The service itself is instant; the lag is queueing, not latency.
    assert rep.latency_ms["p95"] < 30.0


def test_report_carries_queue_and_p95_fields(fmt):
    store, truth = shared_store(fmt)
    keys = np.fromiter(truth[0], dtype=np.int64)

    async def main():
        async with QueryService(store) as svc:
            return await run_load(
                InprocClient(svc), KeySampler(keys, seed=2), 60, concurrency=8
            )

    rep = run(main())
    d = rep.to_dict()
    assert "p95" in d["latency_ms"] and "queue_ms" in d
    assert d["traced"] == 0 and d["slow_traces"] == []
    assert "queue p95=" in rep.summary()


def test_trace_sampling_stitches_server_tree(fmt):
    store, truth = shared_store(fmt)
    keys = np.fromiter(truth[0], dtype=np.int64)

    async def main():
        async with QueryService(store) as svc:
            return await run_load(
                InprocClient(svc),
                KeySampler(keys, seed=2),
                120,
                concurrency=8,
                expected=truth[0],
                trace_rate=1.0,
                keep_traces=3,
            )

    rep = run(main())
    assert rep.incorrect == 0
    assert rep.traced == 120
    assert len(rep.slow_traces) == 3
    lats = [lat for lat, _ in rep.slow_traces]
    assert lats == sorted(lats, reverse=True)  # slowest first
    for _lat, tree in rep.slow_traces:
        names = {s["name"] for s in tree}
        assert "client.get" in names  # the client root...
        assert "serve.get" in names  # ...with the server tree stitched under it
        client_root = next(s for s in tree if s["name"] == "client.get")
        serve_root = next(s for s in tree if s["name"] == "serve.get")
        assert serve_root["parent_id"] == client_root["span_id"]
        assert serve_root["trace_id"] == client_root["trace_id"]
        assert "traced=120" in rep.summary()


def test_trace_rate_zero_works_with_clients_lacking_trace_support():
    """trace_rate=0 must never pass a trace kwarg, so pre-tracing clients
    (or stubs) keep working unchanged."""

    class LegacyClient:
        async def get(self, key, epoch=None, deadline_s=None):  # no trace kwarg
            from repro.serve.service import ServeResponse

            return ServeResponse("not_found", key, 0)

    async def main():
        return await run_load(LegacyClient(), KeySampler(np.arange(8), seed=0), 20)

    rep = run(main())
    assert rep.requests == 20 and rep.traced == 0


def test_trace_sampling_is_seeded(fmt):
    store, truth = shared_store(fmt)
    keys = np.fromiter(truth[0], dtype=np.int64)

    async def one():
        async with QueryService(store) as svc:
            rep = await run_load(
                InprocClient(svc),
                KeySampler(keys, seed=2),
                80,
                trace_rate=0.25,
                trace_seed=9,
            )
            return rep.traced

    assert run(one()) == run(one())
