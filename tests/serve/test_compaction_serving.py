"""Serving through online compaction: the epoch set changes, answers don't.

A warm `QueryService` holds engines, result-cache entries, and (for
FilterKV) negative-cache entries that all name epochs by id.  Compaction
retires ids and deletes extents under the service; these tests pin the
contract that every response after the swap is byte-identical to the
response before it — including requests that still name retired ids —
and that epoch ids are never recycled into the caches' key space.
"""

import asyncio

import numpy as np

from repro.core.compact import CompactionPolicy
from repro.core.kv import random_kv_batch
from repro.core.multiepoch import MultiEpochStore
from repro.serve import ANY_EPOCH, NOT_FOUND, OK, QueryService

from .conftest import ALL_FORMATS, run  # noqa: F401 (fmt fixture import chain)

VB = 24
NRANKS = 4


def _grow(store, rng, n=120):
    """One dump; returns {key: value} for it."""
    batches = [random_kv_batch(n, VB, rng) for _ in range(NRANKS)]
    store.write_epoch(batches)
    return {int(k): b.value_of(i) for b in batches for i, k in enumerate(b.keys)}


def _multi_epoch_store(fmt, nepochs=3, seed=21):
    store = MultiEpochStore(nranks=NRANKS, fmt=fmt, value_bytes=VB, seed=seed)
    rng = np.random.default_rng(seed)
    truth = {}
    for _ in range(nepochs):
        truth.update(_grow(store, rng))
    return store, truth, rng


def _svc(store):
    return QueryService(store, max_inflight=4096, queue_high_watermark=4096)


def test_warm_service_survives_the_swap(fmt):
    """The compaction sweep deletes extents the mounted engines hold
    handles on; the service must notice the swap and keep answering."""
    store, truth, _ = _multi_epoch_store(fmt)

    async def main():
        async with _svc(store) as svc:
            keys = list(truth)[:64] + [1]  # plus a guaranteed miss
            before = {k: await svc.get(k, epoch=ANY_EPOCH) for k in keys}
            report = store.compact()
            for k in keys:
                r = await svc.get(k, epoch=ANY_EPOCH)
                assert r.status == before[k].status
                assert r.value == before[k].value, f"key {k} changed across the swap"
                if r.status == OK and not r.cached:
                    assert r.epoch == report.merged_epoch
            assert svc.stats()["compactions"] == 1
    run(main())
    store.close()


def test_retired_epoch_ids_keep_answering(fmt):
    store, truth, _ = _multi_epoch_store(fmt)

    async def main():
        async with _svc(store) as svc:
            key = next(iter(truth))
            report = store.compact()
            for retired in report.source_epochs:
                r = await svc.get(key, epoch=retired)
                assert r.status == OK and r.value == truth[key]
                assert r.epoch == report.merged_epoch
            bogus = await svc.get(key, epoch=999)
            assert bogus.status == "error"
    run(main())
    store.close()


def test_any_epoch_reports_found_epoch(fmt):
    store, truth, rng = _multi_epoch_store(fmt, nepochs=2)
    newest = _grow(store, rng)

    async def main():
        async with _svc(store) as svc:
            k_new = next(iter(newest))
            k_old = next(k for k in truth if k not in newest)
            r = await svc.get(k_new, epoch=ANY_EPOCH)
            assert r.status == OK and r.epoch == store.epochs[-1]
            r = await svc.get(k_old, epoch=ANY_EPOCH)
            assert r.status == OK and r.epoch < store.epochs[-1]
            assert r.value == truth[k_old]
            miss = await svc.get(1, epoch=ANY_EPOCH)
            assert miss.status == NOT_FOUND
    run(main())
    store.close()


def test_serve_through_compact_then_ingest(fmt):
    """Satellite regression: ids advance monotonically across the
    compact-then-ingest sequence, so a fresh epoch can never collide
    with a retired id still present in the service's cache keys."""
    store, truth, rng = _multi_epoch_store(fmt)

    async def main():
        async with _svc(store) as svc:
            stale_key = next(iter(truth))
            # Seed the result cache with pre-compaction entries.
            seeded = await svc.get(stale_key, epoch=0)
            assert seeded.status == OK

            report = store.compact()
            assert report.merged_epoch == 3  # ids 0..2 taken, never reused

            fresh = _grow(store, rng)
            assert store.epochs == [report.merged_epoch, 4]

            k_new = next(iter(fresh))
            r = await svc.get(k_new, epoch=ANY_EPOCH)
            assert r.status == OK and r.value == fresh[k_new] and r.epoch == 4
            # Old data still served, via both the sentinel and retired ids.
            expect = fresh.get(stale_key, truth[stale_key])
            r = await svc.get(stale_key, epoch=ANY_EPOCH)
            assert r.status == OK and r.value == expect
            r = await svc.get(stale_key, epoch=0)
            assert r.status == OK
    run(main())
    store.close()


def test_policy_compaction_under_load(fmt):
    """Writes trigger policy compactions between requests; every answer
    stays byte-correct and the live epoch count stays bounded."""
    policy = CompactionPolicy(max_live_epochs=3, merge_factor=8)
    store = MultiEpochStore(
        nranks=NRANKS, fmt=fmt, value_bytes=VB, seed=31, compaction=policy
    )
    rng = np.random.default_rng(31)

    async def main():
        truth = {}
        async with _svc(store) as svc:
            for _ in range(6):
                truth.update(_grow(store, rng, n=60))
                sample = list(truth)[:: max(1, len(truth) // 24)]
                for k in sample:
                    r = await svc.get(k, epoch=ANY_EPOCH)
                    assert r.status == OK and r.value == truth[k]
                assert len(store.epochs) <= policy.max_live_epochs
        assert store.compactions >= 2
    run(main())
    store.close()


def test_result_cache_entries_do_not_leak_across_generations(fmt):
    """A post-swap request must not be served a cache entry recorded
    under the pre-swap epoch numbering."""
    store, truth, rng = _multi_epoch_store(fmt, nepochs=2)

    async def main():
        async with _svc(store) as svc:
            key = next(iter(truth))
            first = await svc.get(key, epoch=ANY_EPOCH)
            repeat = await svc.get(key, epoch=ANY_EPOCH)
            assert repeat.cached
            store.compact()
            # Overwrite the key in a fresh epoch: the sentinel's resolution
            # moved, so the stale entry must not shadow the new value.
            value = bytes(rng.integers(0, 256, size=VB, dtype=np.uint8))
            batches = [random_kv_batch(0, VB, rng) for _ in range(NRANKS)]
            batches[0] = type(batches[0])(
                np.array([key], dtype=np.uint64),
                np.frombuffer(value, dtype=np.uint8).reshape(1, VB),
            )
            store.write_epoch(batches)
            r = await svc.get(key, epoch=ANY_EPOCH)
            assert not r.cached and r.value == value != first.value
    run(main())
    store.close()
