"""Concurrent reads over one *recovered* store, every format.

The satellite scenario: a dataset is written, the writer process goes
away, a serving process reattaches from the manifest alone and is
hammered by many concurrent asyncio tasks.  Responses must be
byte-identical to what was written, across epochs, and the telemetry
counters must behave like counters — monotone between observation points
and consistent with the number of requests issued.
"""

import asyncio

import numpy as np

from repro.core.multiepoch import MultiEpochStore
from repro.serve import NOT_FOUND, OK, QueryService

from .conftest import run, shared_store


def _recovered(fmt):
    """Write a 2-epoch dataset, then reattach from its device (the read
    side of crash consistency: no writer-process state survives)."""
    store, truth = shared_store(fmt, epochs=2, records=150)
    return MultiEpochStore.attach(store.device), truth


def test_hammer_recovered_store_byte_correct(fmt):
    store, truth = _recovered(fmt)
    rng = np.random.default_rng(11)

    async def worker(svc, worker_id):
        wrng = np.random.default_rng(worker_id)
        for _ in range(40):
            epoch = int(wrng.integers(0, 2))
            expected = truth[epoch]
            if wrng.random() < 0.1:
                r = await svc.get(3, epoch=epoch)  # absent key
                assert r.status == NOT_FOUND and r.value is None
            else:
                key = int(wrng.choice(list(expected)))
                r = await svc.get(key, epoch=epoch)
                assert r.status == OK, (epoch, key, r)
                assert r.value == expected[key]
                assert r.epoch == epoch

    async def main():
        svc = QueryService(store, max_inflight=4096, queue_high_watermark=4096)
        async with svc:
            await asyncio.gather(*(worker(svc, w) for w in range(16)))
            total = sum(svc.stats()["requests"].values())
            assert total == 16 * 40

    run(main())


def test_unqualified_queries_resolve_to_newest_epoch(fmt):
    store, truth = _recovered(fmt)
    newest = truth[1]
    keys = list(newest)[:25]

    async def main():
        async with QueryService(store, max_inflight=4096, queue_high_watermark=4096) as svc:
            responses = await asyncio.gather(*(svc.get(k) for k in keys))
            for key, r in zip(keys, responses):
                assert r.epoch == 1 and r.value == newest[key]

    run(main())


def test_metrics_are_monotone_under_concurrency(fmt):
    store, truth = _recovered(fmt)
    keys = list(truth[1])

    async def main():
        svc = QueryService(store, max_inflight=4096, queue_high_watermark=4096)
        async with svc:
            m = svc.metrics
            seen_requests, seen_queries, seen_lookups = [], [], []
            for wave in range(4):
                batch = keys[wave * 30 : (wave + 1) * 30] + keys[:10]  # 10 repeats
                await asyncio.gather(*(svc.get(k) for k in batch))
                seen_requests.append(m.total("serve.requests"))
                seen_queries.append(m.total("reader.queries"))
                seen_lookups.append(
                    m.total("serve.result_cache.hits") + m.total("serve.result_cache.misses")
                )
            assert seen_requests == sorted(seen_requests)
            assert seen_queries == sorted(seen_queries)
            assert seen_lookups == sorted(seen_lookups)
            assert seen_requests[-1] == 4 * 40
            # Every request either hit the result cache or probed the store
            # (coalesced waiters share a probe, so <=; nothing is lost).
            assert seen_lookups[-1] == seen_requests[-1]
            assert seen_queries[-1] <= seen_requests[-1]
            assert m.total("serve.requests", status="ok") == 4 * 40

    run(main())
