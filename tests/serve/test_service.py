"""`QueryService` behavior: correctness, batching, caching, admission."""

import asyncio

import numpy as np
import pytest

from repro.core.formats import FMT_FILTERKV
from repro.serve import (
    DEADLINE_EXCEEDED,
    ERROR,
    NOT_FOUND,
    OK,
    OVERLOADED,
    QueryService,
)

from .conftest import build_store, run, shared_store


def test_serves_every_key_byte_correct(fmt):
    store, truth = shared_store(fmt)
    expected = truth[0]

    async def main():
        # Limits sized above the key count: this test is about correctness,
        # not admission control (which has its own tests below).
        svc = QueryService(store, max_inflight=4096, queue_high_watermark=4096)
        async with svc:
            keys = list(expected)
            responses = await asyncio.gather(*(svc.get(k) for k in keys))
            for key, r in zip(keys, responses):
                assert r.status == OK
                assert r.value == expected[key]
                assert r.epoch == 0
            miss = await svc.get(1)  # random 63-bit keys: 1 is absent
            assert miss.status == NOT_FOUND and miss.value is None

    run(main())


def test_result_cache_serves_repeats(fmt):
    store, truth = shared_store(fmt)
    key = next(iter(truth[0]))

    async def main():
        async with QueryService(store) as svc:
            first = await svc.get(key)
            second = await svc.get(key)
            assert not first.cached and second.cached
            assert first.value == second.value == truth[0][key]
            # The repeat never reached the engine.
            assert svc.metrics.total("reader.queries") == 1
            assert svc.metrics.total("serve.result_cache.hits") == 1
            # Negative outcomes are cached too.
            await svc.get(1)
            miss = await svc.get(1)
            assert miss.status == NOT_FOUND and miss.cached

    run(main())


def test_concurrent_same_key_lookups_coalesce(fmt):
    store, truth = shared_store(fmt)
    key = next(iter(truth[0]))

    async def main():
        async with QueryService(store) as svc:
            responses = await asyncio.gather(*(svc.get(key) for _ in range(10)))
            assert all(r.status == OK and r.value == truth[0][key] for r in responses)
            # Ten waiters, one probe.
            assert svc.metrics.total("serve.coalesced") == 9
            assert svc.metrics.total("reader.queries") == 1

    run(main())


def test_concurrent_distinct_keys_share_one_batch(fmt):
    store, truth = shared_store(fmt)
    keys = list(truth[0])[:32]

    async def main():
        async with QueryService(store, max_batch=64) as svc:
            responses = await asyncio.gather(*(svc.get(k) for k in keys))
            assert all(r.status == OK for r in responses)
            assert svc.metrics.total("serve.batches") == 1
            assert svc.metrics.histogram("serve.batch_occupancy").mean == len(keys)

    run(main())


def test_queue_watermark_sheds_with_explicit_status():
    store, truth = shared_store(FMT_FILTERKV)
    expected = truth[0]
    keys = list(expected)[:100]

    async def main():
        svc = QueryService(store, queue_high_watermark=8, queue_low_watermark=2)
        async with svc:
            responses = await asyncio.gather(*(svc.get(k) for k in keys))
            statuses = {r.status for r in responses}
            shed = [r for r in responses if r.status == OVERLOADED]
            answered = [r for r in responses if r.status == OK]
            assert shed, "watermark at 8 must shed some of 100 concurrent arrivals"
            assert statuses <= {OK, OVERLOADED}
            # Every non-shed answer is byte-correct: overload never corrupts.
            for r in answered:
                assert r.value == expected[r.key]
            assert len(shed) + len(answered) == len(keys)
            assert svc.metrics.total("serve.sheds") == len(shed)
            # Hysteresis: once drained, service admits again.
            again = await svc.get(keys[0])
            assert again.status == OK

    run(main())


def test_inflight_budget_sheds():
    store, truth = shared_store(FMT_FILTERKV)
    keys = list(truth[0])[:20]

    async def main():
        async with QueryService(store, max_inflight=5, queue_high_watermark=512) as svc:
            responses = await asyncio.gather(*(svc.get(k) for k in keys))
            shed = sum(r.status == OVERLOADED for r in responses)
            assert shed == len(keys) - 5

    run(main())


def test_deadline_expires_waiter_and_drops_dead_probe(fmt):
    store, truth = shared_store(fmt)
    key = next(iter(truth[0]))

    async def main():
        # A batch window holds dispatch open long enough for the zero
        # deadline to expire first — the straggler-drop path, made
        # deterministic.
        async with QueryService(store, batch_window_s=0.02) as svc:
            r = await svc.get(key, deadline_s=0)
            assert r.status == DEADLINE_EXCEEDED
            # Sole waiter expired before dispatch: the probe never ran.
            await asyncio.sleep(0.1)
            assert svc.metrics.total("serve.deadline_dropped") == 1
            assert svc.metrics.total("reader.queries") == 0

    run(main())


def test_deadline_on_one_waiter_leaves_coalesced_peer_live(fmt):
    store, truth = shared_store(fmt)
    key = next(iter(truth[0]))

    async def main():
        async with QueryService(store) as svc:
            impatient, patient = await asyncio.gather(
                svc.get(key, deadline_s=0), svc.get(key)
            )
            assert impatient.status == DEADLINE_EXCEEDED
            assert patient.status == OK and patient.value == truth[0][key]

    run(main())


def test_default_deadline_applies():
    store, truth = shared_store(FMT_FILTERKV)
    key = next(iter(truth[0]))

    async def main():
        async with QueryService(store, default_deadline_s=0) as svc:
            r = await svc.get(key)
            assert r.status == DEADLINE_EXCEEDED

    run(main())


def test_unknown_epoch_and_empty_store():
    store, truth = shared_store(FMT_FILTERKV)
    key = next(iter(truth[0]))

    async def main():
        async with QueryService(store) as svc:
            r = await svc.get(key, epoch=99)
            assert r.status == ERROR and "99" in r.detail
        from repro.core.multiepoch import MultiEpochStore

        empty = MultiEpochStore(nranks=2, fmt=FMT_FILTERKV, value_bytes=8)
        async with QueryService(empty) as svc:
            r = await svc.get(123)
            assert r.status == NOT_FOUND

    run(main())


def test_closed_service_refuses():
    store, truth = shared_store(FMT_FILTERKV)
    key = next(iter(truth[0]))

    async def main():
        svc = QueryService(store)
        await svc.start()
        ok = await svc.get(key)
        assert ok.status == OK
        await svc.close()
        r = await svc.get(key)
        assert r.status == ERROR and "closed" in r.detail

    run(main())


def test_negative_cache_cuts_false_candidate_probes():
    """The acceptance criterion: repeat FilterKV queries skip the aux
    table's false candidates, visible in the obs counters."""
    store, truth = build_store(FMT_FILTERKV, nranks=32, records=150, seed=3)
    rng = np.random.default_rng(0)
    sample = [int(k) for k in rng.choice(list(truth[0]), 200, replace=False)]

    async def main():
        # result_cache_entries=1 forces the second round back to the probe
        # path; only the negative cache can make it cheaper.
        async with QueryService(store, result_cache_entries=1) as svc:
            m = svc.metrics
            for k in sample:
                assert (await svc.get(k)).status == OK
            probed_round1 = m.total("reader.partitions_probed", format="filterkv")
            inserts = m.total("serve.negative_cache.inserts")
            assert probed_round1 > len(sample), "expected false-candidate probes"
            assert inserts == probed_round1 - len(sample)  # every refutation recorded

            for k in sample:
                assert (await svc.get(k)).status == OK
            probed_round2 = (
                m.total("reader.partitions_probed", format="filterkv") - probed_round1
            )
            skipped = m.total("serve.negative_cache.skipped_probes")
            assert probed_round2 == len(sample), "round 2 must probe only true ranks"
            assert skipped == probed_round1 - len(sample)
            assert probed_round2 < probed_round1

    run(main())


def test_stats_snapshot_is_consistent(fmt):
    store, truth = shared_store(fmt)
    keys = list(truth[0])[:40]

    async def main():
        async with QueryService(store) as svc:
            await asyncio.gather(*(svc.get(k) for k in keys))
            await svc.get(keys[0])  # one cache hit
            s = svc.stats()
            assert s["format"] == fmt.name
            assert s["requests"][OK] == len(keys) + 1
            assert s["result_cache"]["hits"] == 1
            assert s["result_cache"]["misses"] == len(keys)
            assert s["latency_ms"]["count"] == len(keys) + 1
            assert s["latency_ms"]["p99"] >= s["latency_ms"]["p50"] >= 0
            assert sum(s["requests"].values()) == len(keys) + 1

    run(main())


def test_constructor_validation():
    store, _ = shared_store(FMT_FILTERKV)
    with pytest.raises(ValueError):
        QueryService(store, max_batch=0)
    with pytest.raises(ValueError):
        QueryService(store, max_inflight=0)
    with pytest.raises(ValueError):
        QueryService(store, queue_high_watermark=4, queue_low_watermark=4)
