"""End-to-end request tracing through the serving stack.

The contracts under test:

* a sampled `TraceContext` rides the wire and comes back with the full
  server-side span tree (service → engine → storage) stitched under it;
* coalesced duplicates each get a complete tree — the lead request owns
  the real batch subtree, the others get ``shared=True`` mirrors with no
  counters, so summing counters across *all* traces still matches the
  registry aggregates exactly;
* a shed request's trace terminates in an explicit ``serve.shed`` span;
* untraced requests pay nothing and return no trace.
"""

import asyncio

from repro.core.formats import FMT_FILTERKV
from repro.obs import TraceCollector, TraceContext, counter_key, snapshot_counters
from repro.serve import (
    DEADLINE_EXCEEDED,
    NOT_FOUND,
    OK,
    QueryService,
    ServeServer,
    TCPClient,
)

from .conftest import run, shared_store

# The batch counter ticks once per dispatch *window*, not per request:
# windows exist independently of any single trace, so it is the one
# serve.* counter deliberately left out of span attribution.
UNATTRIBUTED = ("serve.batches",)


def _ctx(tracer: TraceCollector) -> TraceContext:
    return TraceContext(tracer.new_id(), tracer.new_id(), sampled=True)


def _names(tree: list[dict]) -> set[str]:
    return {s["name"] for s in tree}


def test_trace_round_trip_over_tcp(fmt):
    store, truth = shared_store(fmt)
    key = next(iter(truth[0]))
    client_tracer = TraceCollector(seed=3)

    async def main():
        service = QueryService(store)
        async with ServeServer(service) as server:
            async with TCPClient(server.host, server.port) as client:
                ctx = _ctx(client_tracer)
                r = await client.get(key, trace=ctx)
                assert r.status == OK and r.value == truth[0][key]
                assert r.trace, "sampled request returned no span tree"
                # Every span extends the client's trace.
                assert {s["trace_id"] for s in r.trace} == {ctx.trace_id}
                names = _names(r.trace)
                # The tree crosses service -> engine/aux -> storage (the
                # filterkv probe path routes through the aux table rather
                # than a full engine batch).
                assert {"serve.get", "serve.queue", "serve.batch"} <= names
                assert names & {"engine.get_many", "engine.get", "aux.fetch"}
                assert any(n.startswith(("sstable.", "vlog.")) for n in names)
                root = next(s for s in r.trace if s["name"] == "serve.get")
                assert root["parent_id"] == ctx.span_id
                assert root["attrs"]["status"] == OK
                # An untraced request carries no tree and records nothing new.
                before = len(service.tracer)
                r2 = await client.get(key)
                assert r2.trace is None
                assert len(service.tracer) == before

    run(main())


def test_unsampled_context_is_ignored(fmt):
    store, truth = shared_store(fmt)
    key = next(iter(truth[0]))

    async def main():
        async with QueryService(store) as svc:
            r = await svc.get(key, trace={"trace_id": "t", "span_id": "s", "sampled": False})
            assert r.trace is None
            assert len(svc.tracer) == 0

    run(main())


def test_malformed_wire_context_never_fails_the_request(fmt):
    store, truth = shared_store(fmt)
    key = next(iter(truth[0]))

    async def main():
        async with QueryService(store) as svc:
            r = await svc.get(key, trace={"trace_id": 7})
            assert r.status == OK and r.trace is None

    run(main())


def test_server_side_sampling_originates_traces(fmt):
    store, truth = shared_store(fmt)
    key = next(iter(truth[0]))

    async def main():
        async with QueryService(store, tracer=TraceCollector(sample_rate=1.0)) as svc:
            r = await svc.get(key)
            assert r.trace and "serve.get" in _names(r.trace)
            root = next(s for s in r.trace if s["name"] == "serve.get")
            assert root["parent_id"] is None  # a locally originated root

    run(main())


def test_cache_hit_trace_is_terminal(fmt):
    store, truth = shared_store(fmt)
    key = next(iter(truth[0]))

    async def main():
        async with QueryService(store, tracer=TraceCollector(sample_rate=1.0)) as svc:
            await svc.get(key)
            r = await svc.get(key)
            assert r.cached
            tree = r.trace
            (root,) = [s for s in tree if s["name"] == "serve.get"]
            assert root["counters"].get("serve.result_cache.hits") == 1
            assert "serve.batch" not in _names(tree)  # never reached the engine

    run(main())


def test_coalesced_members_all_get_complete_trees(fmt):
    store, truth = shared_store(fmt)
    key = next(iter(truth[0]))

    async def main():
        svc = QueryService(store, tracer=TraceCollector(sample_rate=1.0))
        async with svc:
            # Same key, issued together: admitted before the dispatcher
            # runs, so all three coalesce onto one probe.
            rs = await asyncio.gather(svc.get(key), svc.get(key), svc.get(key))
            assert all(r.status == OK for r in rs)
            assert svc.metrics.total("serve.coalesced") == 2
            trees = [r.trace for r in rs]
            for tree in trees:
                names = _names(tree)
                assert {"serve.get", "serve.batch"} <= names
                assert names & {"engine.get_many", "engine.get", "aux.fetch"}
            # Exactly one tree owns the real batch subtree; the mirrors
            # are marked shared and carry no counters (the work happened
            # once — charging every member would double-count).
            flat = [s for tree in trees for s in tree]
            batch_spans = [s for s in flat if s["name"] == "serve.batch"]
            real = [s for s in batch_spans if not s.get("attrs", {}).get("shared")]
            mirrored = [s for s in batch_spans if s.get("attrs", {}).get("shared")]
            assert len(real) == 1 and len(mirrored) == 2
            for tree in trees:
                for s in tree:
                    if s.get("attrs", {}).get("shared"):
                        assert not s.get("counters")
            # The engine ran once in total, and the traces agree.
            assert svc.metrics.total("reader.queries") == 1
            claimed = sum(
                v
                for s in flat
                for k, v in s.get("counters", {}).items()
                if k.startswith("reader.queries")
            )
            assert claimed == 1

    run(main())


def test_deadline_shed_trace_has_terminal_shed_span(fmt):
    store, truth = shared_store(fmt)
    key = next(iter(truth[0]))

    async def main():
        async with QueryService(store, tracer=TraceCollector(sample_rate=1.0)) as svc:
            r = await svc.get(key, deadline_s=0.0)
            assert r.status == DEADLINE_EXCEEDED
            tree = r.trace
            root = next(s for s in tree if s["name"] == "serve.get")
            assert root["status"] == DEADLINE_EXCEEDED
            shed = next(s for s in tree if s["name"] == "serve.shed")
            assert shed["status"] == "shed"
            assert shed["attrs"]["reason"] == "deadline"
            assert shed["parent_id"] == root["span_id"]

    run(main())


def test_overload_shed_trace(fmt):
    store, truth = shared_store(fmt)
    keys = list(truth[0])

    async def main():
        svc = QueryService(
            store,
            tracer=TraceCollector(sample_rate=1.0),
            max_inflight=2,
            queue_high_watermark=1,
        )
        async with svc:
            rs = await asyncio.gather(*(svc.get(k) for k in keys[:30]))
            shed = [r for r in rs if r.status == "overloaded"]
            assert shed, "overload never triggered"
            tree = shed[0].trace
            reasons = [
                s["attrs"]["reason"] for s in tree if s["name"] == "serve.shed"
            ]
            assert reasons == ["overloaded"]
            root = next(s for s in tree if s["name"] == "serve.get")
            assert root["counters"].get("serve.sheds") == 1

    run(main())


def test_span_counter_deltas_sum_exactly_to_aggregates(fmt):
    """The charge-once discipline, end to end: summing any counter over
    every retained span reproduces the registry aggregate exactly —
    across cache hits, misses, absent keys, and coalesced duplicates."""
    store, truth = shared_store(fmt)
    keys = list(truth[0])[:12]

    async def main():
        svc = QueryService(store, tracer=TraceCollector(sample_rate=1.0))
        async with svc:
            # misses, repeats (cache hits), coalesced duplicates, absent keys
            await asyncio.gather(*(svc.get(k) for k in keys))
            await asyncio.gather(*(svc.get(k) for k in keys[:4]))
            await asyncio.gather(svc.get(keys[0], epoch=0), svc.get(keys[0], epoch=0))
            await svc.get(1)  # absent
        return svc

    svc = run(main())
    claimed: dict[str, float] = {}
    for s in svc.tracer.spans:
        for k, v in s.counters.items():
            claimed[k] = claimed.get(k, 0) + v
    service_agg = snapshot_counters(svc.metrics, prefixes=("serve.", "reader.", "aux."))
    device_agg = snapshot_counters(store.device.metrics, prefixes=("sstable.",))
    for key, total in {**service_agg, **device_agg}.items():
        if key.startswith(UNATTRIBUTED):
            continue
        assert claimed.get(key, 0) == total, (
            f"{key}: spans claim {claimed.get(key, 0)}, registry has {total}"
        )
    # And nothing was invented: every claimed series exists in a registry.
    for key in claimed:
        assert key in service_agg or key in device_agg, f"unknown series {key}"


def test_stats_live_and_trace_verbs_over_tcp(fmt):
    store, truth = shared_store(fmt)
    keys = list(truth[0])[:8]
    client_tracer = TraceCollector(seed=5)

    async def main():
        service = QueryService(store)
        async with ServeServer(service) as server:
            async with TCPClient(server.host, server.port) as client:
                for k in keys:
                    await client.get(k, trace=_ctx(client_tracer))
                await client.get(1)
                live = await client.stats_live()
                assert live["requests"] == len(keys) + 1
                assert live["counts"][OK] + live["counts"][NOT_FOUND] == len(keys) + 1
                assert live["qps"] > 0
                assert live["latency_ms"]["count"] == len(keys) + 1
                assert live["format"] == store.fmt.name
                assert live["traces_retained"] > 0
                narrow = await client.stats_live(window_s=1e-9)
                assert narrow["requests"] == 0
                traces = await client.traces(3)
                assert 1 <= len(traces) <= 3
                assert all(
                    any(s["name"] == "serve.get" for s in tree) for tree in traces
                )

    run(main())


def test_tracing_disabled_by_default_retains_nothing(fmt):
    store, truth = shared_store(fmt)
    keys = list(truth[0])[:8]

    async def main():
        async with QueryService(store) as svc:
            await asyncio.gather(*(svc.get(k) for k in keys))
            assert len(svc.tracer) == 0
            for k in keys[:2]:
                assert (await svc.get(k)).trace is None

    run(main())
