"""Unit tests for the auxiliary-table backends."""

import numpy as np
import pytest

from repro.core.auxtable import (
    BloomAuxTable,
    CuckooAuxTable,
    ExactAuxTable,
    QuotientAuxTable,
    bloom_bits_per_key,
    make_aux_table,
    rank_bits,
)


def _workload(n=3000, nparts=32, seed=1):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**63, size=n, dtype=np.uint64)
    ranks = rng.integers(0, nparts, size=n, dtype=np.uint64)
    return keys, ranks


BACKENDS = ["exact", "bloom", "cuckoo", "quotient"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_no_false_negatives(backend):
    """Every backend must always return the true source rank."""
    n = 600 if backend == "quotient" else 3000
    keys, ranks = _workload(n=n)
    t = make_aux_table(backend, nparts=32, capacity_hint=n)
    t.insert_many(keys, ranks)
    step = max(1, n // 100)
    for i in range(0, n, step):
        assert int(ranks[i]) in t.candidate_ranks(int(keys[i]))


@pytest.mark.parametrize("backend", BACKENDS)
def test_candidate_counts_consistent(backend):
    n = 400 if backend == "quotient" else 2000
    keys, ranks = _workload(n=n, nparts=16, seed=2)
    t = make_aux_table(backend, nparts=16, capacity_hint=n)
    t.insert_many(keys, ranks)
    sample = keys[:50]
    counts = t.candidate_counts(sample)
    for i, k in enumerate(sample):
        assert counts[i] == len(t.candidate_ranks(int(k)))


def test_exact_amplification_is_one():
    keys, ranks = _workload()
    t = ExactAuxTable(nparts=32)
    t.insert_many(keys, ranks)
    assert np.all(t.candidate_counts(keys[:500]) == 1)


def test_exact_size_is_12_bytes_per_key():
    keys, ranks = _workload(n=1000)
    t = ExactAuxTable(nparts=32)
    t.insert_many(keys, ranks)
    assert t.size_bytes == 12_000
    assert t.bytes_per_key == 12.0
    assert len(t.to_bytes()) == 12_000


def test_exact_serialization_layout():
    t = ExactAuxTable(nparts=4)
    t.insert_many(np.asarray([5], dtype=np.uint64), 3, offsets=np.asarray([0x1122334455], dtype=np.uint64))
    blob = t.to_bytes()
    assert blob[:4] == (3).to_bytes(4, "little")
    assert blob[4:] == (0x1122334455).to_bytes(8, "little")


def test_bloom_amplification_grows_with_nparts():
    """Fig. 7a: Fmt-BF amplification rises (logarithmically) with N."""
    amps = []
    for nparts in (16, 256, 4096):
        keys, ranks = _workload(n=4000, nparts=nparts, seed=3)
        t = BloomAuxTable(nparts, capacity_hint=4000)
        t.insert_many(keys, ranks)
        amps.append(t.candidate_counts(keys[:100]).mean())
    assert amps[0] < amps[1] < amps[2]


def test_bloom_sampled_estimate_close_to_exhaustive():
    keys, ranks = _workload(n=3000, nparts=2048, seed=4)
    t = BloomAuxTable(2048, capacity_hint=3000)
    t.insert_many(keys, ranks)
    sample = keys[:64]
    exact = t.candidate_counts(sample, exhaustive_limit=1 << 16).mean()
    est = t.candidate_counts(sample, exhaustive_limit=1).mean()
    assert est == pytest.approx(exact, rel=0.35, abs=1.0)


def test_cuckoo_amplification_flat_in_nparts():
    """Fig. 7a: Fmt-Cuckoo amplification is bounded (~2), independent of N."""
    amps = []
    for nparts in (16, 1024, 65536):
        keys, ranks = _workload(n=20_000, nparts=nparts, seed=5)
        t = CuckooAuxTable(nparts, capacity_hint=20_000, fp_bits=4)
        t.insert_many(keys, ranks)
        amps.append(t.candidate_counts(keys[:2000]).mean())
    assert max(amps) < 2.6
    assert max(amps) - min(amps) < 0.7


def test_cuckoo_space_tracks_rank_bits():
    keys, ranks = _workload(n=10_000, nparts=1024, seed=6)
    t = CuckooAuxTable(1024, capacity_hint=10_000, fp_bits=4)
    t.insert_many(keys, ranks)
    # (4 + 10) bits/slot at ≥85 % utilization → under ~2.2 B/key.
    assert t.bytes_per_key < 2.2
    assert len(t.to_bytes()) == pytest.approx(t.size_bytes, rel=0.05)


def test_bloom_bits_budget_matches_cuckoo_width():
    """§IV-C: the Bloom budget 4+log2(N) equals the cuckoo slot width."""
    for nparts in (1 << 10, 1 << 16, 1 << 24):
        assert bloom_bits_per_key(nparts) == 4 + rank_bits(nparts)


def test_rank_bits():
    assert rank_bits(2) == 1
    assert rank_bits(1024) == 10
    assert rank_bits(1025) == 11
    assert rank_bits(16_000_000) == 24


def test_quotient_backend_basics():
    keys, ranks = _workload(n=300, nparts=8, seed=7)
    t = QuotientAuxTable(8, capacity_hint=300)
    t.insert_many(keys, ranks)
    assert len(t) == 300
    assert t.size_bytes > 0
    assert len(t.to_bytes()) > 0


def test_insert_validates_rank_range():
    t = ExactAuxTable(nparts=4)
    with pytest.raises(ValueError):
        t.insert_many(np.asarray([1], dtype=np.uint64), 4)


def test_factory_rejects_unknown():
    with pytest.raises(ValueError):
        make_aux_table("btree", nparts=4)


def test_bloom_requires_capacity():
    with pytest.raises(ValueError):
        BloomAuxTable(4, capacity_hint=0)


def test_bytes_per_key_empty_table():
    assert ExactAuxTable(4).bytes_per_key == 0.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_candidates_many_matches_scalar(backend):
    """Every backend exposes the same bulk surface, and it agrees with the
    per-key walk — including on keys the table never saw."""
    n = 400 if backend == "quotient" else 2000
    keys, ranks = _workload(n=n, nparts=16, seed=4)
    t = make_aux_table(backend, nparts=16, capacity_hint=n)
    t.insert_many(keys, ranks)
    absent = np.random.default_rng(5).integers(0, 2**63, size=40, dtype=np.uint64)
    probe = np.concatenate([keys[:160], absent])
    counts, flat = t.candidates_many(probe)
    assert counts.sum() == flat.size
    off = 0
    for i, k in enumerate(probe):
        got = flat[off : off + counts[i]]
        off += counts[i]
        want = np.asarray(t.candidate_ranks(int(k)), dtype=np.int64)
        assert np.array_equal(np.asarray(got, dtype=np.int64), want), f"key {k}"


@pytest.mark.parametrize("backend", BACKENDS)
def test_candidates_many_empty_batch(backend):
    t = make_aux_table(backend, nparts=8, capacity_hint=16)
    t.insert_many(*_workload(n=16, nparts=8, seed=6))
    counts, flat = t.candidates_many(np.zeros(0, dtype=np.uint64))
    assert counts.size == 0 and flat.size == 0


def test_candidates_many_probe_accounting_matches_scalar():
    """Bulk and scalar surfaces feed the same aux.* counters."""
    from repro.obs import MetricsRegistry

    keys, ranks = _workload(n=1500, nparts=16, seed=7)
    m_s, m_b = MetricsRegistry(), MetricsRegistry()
    ts = make_aux_table("cuckoo", nparts=16, capacity_hint=1500, metrics=m_s)
    tb = make_aux_table("cuckoo", nparts=16, capacity_hint=1500, metrics=m_b)
    ts.insert_many(keys, ranks)
    tb.insert_many(keys, ranks)
    probe = keys[:300]
    for k in probe:
        ts.candidate_ranks(int(k))
    tb.candidates_many(probe)
    for name in ("aux.probes", "aux.candidates", "aux.false_candidates"):
        assert m_b.total(name) == m_s.total(name), name


def test_exact_candidates_many_with_duplicate_keys():
    """A key inserted from several ranks must report all of them."""
    t = ExactAuxTable(nparts=8)
    t.insert_many(np.asarray([5, 5, 9], dtype=np.uint64), np.asarray([3, 6, 1], dtype=np.uint64))
    counts, flat = t.candidates_many(np.asarray([5, 9, 1234], dtype=np.uint64))
    assert counts.tolist() == [2, 1, 0]
    assert flat.tolist() == [3, 6, 1]
