"""Regression tests for PR 2's bugfixes.

Each test pins a bug that shipped in an earlier revision:

* `WriterState._append_to_buffer` looped forever when one record was wider
  than ``batch_bytes`` (the record-boundary trim cut the batch to zero).
* `CachedQueryEngine._get_filterkv` ignored ``parallel_probe=True`` and
  always probed candidates sequentially.
* `WriterState.local_storage_bytes` omitted spilled run bytes for a
  bounded-memory filterkv writer, understating local storage mid-burst.
"""

import numpy as np

from repro.cluster import SimCluster
from repro.core import FMT_FILTERKV
from repro.core.formats import FMT_BASE
from repro.core.kv import random_kv_batch
from repro.core.partitioning import HashPartitioner
from repro.core.pipeline import WriterState, main_table_name
from repro.core.reader import CachedQueryEngine
from repro.storage.blockio import StorageDevice


def test_record_wider_than_batch_bytes_ships_single_record_envelopes():
    """A record wider than the shipping budget must go out alone, not hang."""
    shipped = []
    w = WriterState(
        rank=0,
        fmt=FMT_BASE,
        partitioner=HashPartitioner(2),
        device=StorageDevice(),
        value_bytes=56,  # record = 8 + 56 = 64 bytes
        send=shipped.append,
        batch_bytes=32,  # narrower than one record
    )
    batch = random_kv_batch(40, 56, rng=5)
    w.put_batch(batch)  # pre-fix: infinite loop here
    w.flush()
    assert sum(env.nrecords for env in shipped) == 40
    # Nothing can share an envelope when one record overflows the budget.
    assert all(env.nrecords == 1 and len(env.payload) == 64 for env in shipped)


def _filterkv_dataset(nranks=8, records=3000):
    cluster = SimCluster(
        nranks=nranks,
        fmt=FMT_FILTERKV,
        value_bytes=8,
        records_hint=nranks * records,
        seed=47,
    )
    batches = [
        random_kv_batch(records, 8, np.random.default_rng(90 + r)) for r in range(nranks)
    ]
    for rank, b in enumerate(batches):
        cluster.put(rank, b)
    cluster.finish_epoch()
    return cluster, batches


def _cached_engine(cluster, parallel):
    e = cluster.query_engine()
    return CachedQueryEngine(
        device=e.device,
        fmt=e.fmt,
        nranks=e.nranks,
        partitioner=e.partitioner,
        aux_tables=e.aux_tables,
        epoch=e.epoch,
        parallel_probe=parallel,
    )


def test_cached_engine_routes_parallel_probe(monkeypatch):
    """``parallel_probe=True`` must reach ``_probe_parallel`` on the cached
    engine too, not silently fall back to the sequential loop."""
    cluster, batches = _filterkv_dataset()
    engine = _cached_engine(cluster, parallel=True)
    calls = []
    inner = engine._probe_parallel

    def spy(key, candidates, stats):
        calls.append(int(key))
        return inner(key, candidates, stats)

    monkeypatch.setattr(engine, "_probe_parallel", spy)
    for i in range(0, 3000, 307):
        key = int(batches[2].keys[i])
        value, qs = engine.get(key)
        assert qs.found and value == batches[2].value_of(i)
    assert len(calls) == len(range(0, 3000, 307))


def test_cached_parallel_matches_sequential_answers():
    cluster, batches = _filterkv_dataset()
    seq = _cached_engine(cluster, parallel=False)
    par = _cached_engine(cluster, parallel=True)
    for i in range(0, 3000, 271):
        key = int(batches[5].keys[i])
        assert seq.get(key)[0] == par.get(key)[0] == batches[5].value_of(i)
    absent = par.get(0xDEAD0BAD)
    assert absent[0] is None and not absent[1].found


def test_local_storage_bytes_counts_spilled_runs():
    """Mid-burst, a bounded-memory filterkv writer holds its data in spilled
    runs; local storage accounting must see those bytes."""
    dev = StorageDevice()
    w = WriterState(
        rank=0,
        fmt=FMT_FILTERKV,
        partitioner=HashPartitioner(2),
        device=dev,
        value_bytes=16,
        send=lambda env: None,
        spill_budget_bytes=2048,
    )
    w.put_batch(random_kv_batch(2000, 16, rng=6))
    spilled = w._runs.size_bytes
    assert spilled > 0  # the tiny budget forced spills
    assert w.local_storage_bytes >= spilled  # pre-fix: reported ~0 mid-burst
    w.finish()
    table = dev.file_size(main_table_name(0, 0))
    # Post-flatten both the final table and the (retained) runs are local.
    assert w.local_storage_bytes == table + w._runs.size_bytes
