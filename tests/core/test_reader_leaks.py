"""Extent-handle leak audits for the read path.

`StorageDevice.open_handles` counts live `StorageFile` handles (opens
minus closes).  The uncached `QueryEngine` opens tables, value logs, and
aux extents per query, so after any number of queries the device must be
back at its pre-query handle count — historically the uncached path
leaked one reader per query.  The cached engine intentionally holds
handles while warm, but must return every one of them on `close()`.
"""

import numpy as np
import pytest

from repro.cluster import SimCluster
from repro.core import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.multiepoch import MultiEpochStore

ALL_FORMATS = [FMT_BASE, FMT_DATAPTR, FMT_FILTERKV]


def _dataset(fmt, nranks=4, records=600):
    cluster = SimCluster(
        nranks=nranks, fmt=fmt, value_bytes=24, records_hint=nranks * records, seed=13
    )
    batches = [
        random_kv_batch(records, 24, np.random.default_rng(90 + r)) for r in range(nranks)
    ]
    for rank, b in enumerate(batches):
        cluster.put(rank, b)
    cluster.finish_epoch()
    return cluster, batches


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
def test_uncached_engine_leaks_no_handles(fmt):
    cluster, batches = _dataset(fmt)
    engine = cluster.query_engine()
    baseline = engine.device.open_handles
    for i in range(100):
        b = batches[i % len(batches)]
        value, _ = engine.get(int(b.keys[i % len(b)]))
        assert value is not None
    engine.get(5)  # misses must release handles too
    assert engine.device.open_handles == baseline, "read path leaked extent handles"


def test_parallel_probe_leaks_no_handles():
    cluster, batches = _dataset(FMT_FILTERKV)
    cold = cluster.query_engine()
    from repro.core.reader import QueryEngine

    engine = QueryEngine(
        device=cold.device,
        fmt=cold.fmt,
        nranks=cold.nranks,
        partitioner=cold.partitioner,
        aux_tables=cold.aux_tables,
        epoch=cold.epoch,
        parallel_probe=True,
    )
    baseline = engine.device.open_handles
    for i in range(50):
        engine.get(int(batches[0].keys[i]))
    assert engine.device.open_handles == baseline


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
def test_cached_engine_returns_all_handles_on_close(fmt):
    cluster, batches = _dataset(fmt)
    cold = cluster.query_engine()
    from repro.core.reader import CachedQueryEngine

    baseline = cold.device.open_handles
    with CachedQueryEngine(
        device=cold.device,
        fmt=cold.fmt,
        nranks=cold.nranks,
        partitioner=cold.partitioner,
        aux_tables=cold.aux_tables,
        epoch=cold.epoch,
    ) as engine:
        for i in range(60):
            b = batches[i % len(batches)]
            engine.get(int(b.keys[i % len(b)]))
        assert engine.device.open_handles > baseline  # warm cache holds handles
    assert cold.device.open_handles == baseline, "close() must release every cached handle"


def test_table_cache_eviction_closes_handles():
    cluster, batches = _dataset(FMT_BASE, nranks=6)
    cold = cluster.query_engine()
    from repro.core.reader import CachedQueryEngine

    baseline = cold.device.open_handles
    engine = CachedQueryEngine(
        device=cold.device,
        fmt=cold.fmt,
        nranks=cold.nranks,
        partitioner=cold.partitioner,
        aux_tables=cold.aux_tables,
        epoch=cold.epoch,
        table_cache_entries=2,
    )
    for b in batches:  # touch all 6 partitions through a 2-entry cache
        for i in range(3):
            engine.get(int(b.keys[i]))
    assert engine.device.open_handles <= baseline + 2  # bounded, evictions closed
    assert engine.metrics is not None  # engine without registry still audits
    engine.close()
    assert cold.device.open_handles == baseline


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
def test_trajectory_reuses_pooled_engines(fmt):
    """Repeated trajectory calls must not churn reader handles.

    The store keeps one warm `CachedQueryEngine` per live epoch: the
    first call opens handles, every later call reuses them (stable handle
    count, near-zero new device reads), and `close()` returns the device
    to its pre-trajectory count.
    """
    store = MultiEpochStore(nranks=4, fmt=fmt, value_bytes=24, seed=5)
    rng = np.random.default_rng(5)
    epoch_batches = []
    for _ in range(3):
        batches = [random_kv_batch(300, 24, rng) for _ in range(4)]
        store.write_epoch(batches)
        epoch_batches.append(batches)
    attached = MultiEpochStore.attach(store.device)
    keys = [int(epoch_batches[e][r].keys[7]) for e in range(3) for r in range(4)]

    baseline = attached.device.open_handles
    for k in keys:
        attached.trajectory(k)
    warm = attached.device.open_handles
    assert warm > baseline  # pooled engines hold their handles...

    reads_before = attached.device.counters.reads
    for k in keys:
        attached.trajectory(k)
    assert attached.device.open_handles == warm  # ...and never grow
    reads_per_call = (attached.device.counters.reads - reads_before) / len(keys)
    # Warm engines serve repeats from cached blocks/readers: the second
    # sweep must not re-open and re-read every partition per call.
    assert reads_per_call < 2 * len(attached.epochs)

    attached.close()
    assert attached.device.open_handles == baseline


def test_compaction_retires_pooled_engines():
    """Compaction closes the warm engines of the epochs it retires —
    their handles point at swept extents."""
    store = MultiEpochStore(nranks=2, fmt=FMT_BASE, value_bytes=24, seed=9)
    rng = np.random.default_rng(9)
    batches_by_epoch = [
        [random_kv_batch(120, 24, rng) for _ in range(2)] for _ in range(3)
    ]
    for batches in batches_by_epoch:
        store.write_epoch(batches)
    key = int(batches_by_epoch[0][0].keys[0])
    store.trajectory(key)  # warms one pooled engine per epoch
    baseline_live = store.device.open_handles

    store.compact()

    # The retired epochs' pooled handles were all returned; lookups still
    # answer through the merged epoch, and close() releases the rest.
    assert store.device.open_handles < baseline_live
    value, found, _ = store.lookup(key)
    assert found == store.epochs[-1]
    pre_close = store.device.open_handles
    store.trajectory(key)
    store.close()
    assert store.device.open_handles <= pre_close


def test_multiepoch_store_queries_leak_nothing():
    store = MultiEpochStore(nranks=4, fmt=FMT_FILTERKV, value_bytes=24, seed=3)
    rng = np.random.default_rng(3)
    batches = [random_kv_batch(400, 24, rng) for _ in range(4)]
    store.write_epoch(batches)
    attached = MultiEpochStore.attach(store.device)
    baseline = attached.device.open_handles
    for b in batches:
        for i in range(0, 400, 37):
            value, _ = attached.get(int(b.keys[i]), 0)
            assert value == b.value_of(i)
    assert attached.device.open_handles == baseline


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
def test_pooled_reads_leak_no_parent_handles(fmt):
    """Reader and value-log handles never cross the spawn boundary.

    Pool workers open their own readers against a shared-memory mirror;
    the parent's device must see zero handle traffic from a pooled
    `get_many` beyond the snapshot pack, and the serial oracle (fresh
    uncached engines per chunk) must stay balanced too.  `release()`
    returns the store to its pre-attach handle count.
    """
    from repro.obs import MetricsRegistry
    from repro.parallel import WorkerPool

    store = MultiEpochStore(nranks=4, fmt=fmt, value_bytes=24, seed=3)
    rng = np.random.default_rng(3)
    batches = [random_kv_batch(300, 24, rng) for _ in range(4)]
    store.write_epoch(batches)
    keys = np.concatenate(
        [batches[0].keys[:40], rng.integers(0, 2**63, 100, dtype=np.uint64)]
    )

    with WorkerPool(workers=2, metrics=MetricsRegistry("pool")) as pool:
        pooled = store.attach_pool(pool, min_keys=1)
        baseline = store.device.open_handles
        values, _ = pooled.get_many(keys, 0)
        assert sum(1 for v in values if v is not None) >= 40
        assert store.device.open_handles == baseline, "pooled path leaked handles"
        sv, _ = pooled.serial_get_many(keys, 0)
        assert sv == values
        assert store.device.open_handles == baseline, "serial oracle leaked handles"
        pooled.release()
        assert store.device.open_handles == baseline
    store.close()
