"""Extent-handle leak audits for the read path.

`StorageDevice.open_handles` counts live `StorageFile` handles (opens
minus closes).  The uncached `QueryEngine` opens tables, value logs, and
aux extents per query, so after any number of queries the device must be
back at its pre-query handle count — historically the uncached path
leaked one reader per query.  The cached engine intentionally holds
handles while warm, but must return every one of them on `close()`.
"""

import numpy as np
import pytest

from repro.cluster import SimCluster
from repro.core import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.multiepoch import MultiEpochStore

ALL_FORMATS = [FMT_BASE, FMT_DATAPTR, FMT_FILTERKV]


def _dataset(fmt, nranks=4, records=600):
    cluster = SimCluster(
        nranks=nranks, fmt=fmt, value_bytes=24, records_hint=nranks * records, seed=13
    )
    batches = [
        random_kv_batch(records, 24, np.random.default_rng(90 + r)) for r in range(nranks)
    ]
    for rank, b in enumerate(batches):
        cluster.put(rank, b)
    cluster.finish_epoch()
    return cluster, batches


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
def test_uncached_engine_leaks_no_handles(fmt):
    cluster, batches = _dataset(fmt)
    engine = cluster.query_engine()
    baseline = engine.device.open_handles
    for i in range(100):
        b = batches[i % len(batches)]
        value, _ = engine.get(int(b.keys[i % len(b)]))
        assert value is not None
    engine.get(5)  # misses must release handles too
    assert engine.device.open_handles == baseline, "read path leaked extent handles"


def test_parallel_probe_leaks_no_handles():
    cluster, batches = _dataset(FMT_FILTERKV)
    cold = cluster.query_engine()
    from repro.core.reader import QueryEngine

    engine = QueryEngine(
        device=cold.device,
        fmt=cold.fmt,
        nranks=cold.nranks,
        partitioner=cold.partitioner,
        aux_tables=cold.aux_tables,
        epoch=cold.epoch,
        parallel_probe=True,
    )
    baseline = engine.device.open_handles
    for i in range(50):
        engine.get(int(batches[0].keys[i]))
    assert engine.device.open_handles == baseline


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
def test_cached_engine_returns_all_handles_on_close(fmt):
    cluster, batches = _dataset(fmt)
    cold = cluster.query_engine()
    from repro.core.reader import CachedQueryEngine

    baseline = cold.device.open_handles
    with CachedQueryEngine(
        device=cold.device,
        fmt=cold.fmt,
        nranks=cold.nranks,
        partitioner=cold.partitioner,
        aux_tables=cold.aux_tables,
        epoch=cold.epoch,
    ) as engine:
        for i in range(60):
            b = batches[i % len(batches)]
            engine.get(int(b.keys[i % len(b)]))
        assert engine.device.open_handles > baseline  # warm cache holds handles
    assert cold.device.open_handles == baseline, "close() must release every cached handle"


def test_table_cache_eviction_closes_handles():
    cluster, batches = _dataset(FMT_BASE, nranks=6)
    cold = cluster.query_engine()
    from repro.core.reader import CachedQueryEngine

    baseline = cold.device.open_handles
    engine = CachedQueryEngine(
        device=cold.device,
        fmt=cold.fmt,
        nranks=cold.nranks,
        partitioner=cold.partitioner,
        aux_tables=cold.aux_tables,
        epoch=cold.epoch,
        table_cache_entries=2,
    )
    for b in batches:  # touch all 6 partitions through a 2-entry cache
        for i in range(3):
            engine.get(int(b.keys[i]))
    assert engine.device.open_handles <= baseline + 2  # bounded, evictions closed
    assert engine.metrics is not None  # engine without registry still audits
    engine.close()
    assert cold.device.open_handles == baseline


def test_multiepoch_store_queries_leak_nothing():
    store = MultiEpochStore(nranks=4, fmt=FMT_FILTERKV, value_bytes=24, seed=3)
    rng = np.random.default_rng(3)
    batches = [random_kv_batch(400, 24, rng) for _ in range(4)]
    store.write_epoch(batches)
    attached = MultiEpochStore.attach(store.device)
    baseline = attached.device.open_handles
    for b in batches:
        for i in range(0, 400, 37):
            value, _ = attached.get(int(b.keys[i]), 0)
            assert value == b.value_of(i)
    assert attached.device.open_handles == baseline
