"""Tests for the indexed-massive-directory facade."""

import numpy as np
import pytest

from repro.core.formats import FMT_BASE, FMT_FILTERKV
from repro.core.imd import IndexedDirectory
from repro.core.kv import random_kv_batch


def test_append_epoch_read():
    d = IndexedDirectory(nranks=4, value_bytes=8)
    d.append(0, 101, b"value--1")
    d.append(1, 202, b"value--2")
    d.append(3, 303, b"value--3")
    stats = d.end_epoch()
    assert stats.records == 3
    v, qs = d.read(202, epoch=0)
    assert qs.found and v == b"value--2"


def test_appends_isolated_per_epoch():
    d = IndexedDirectory(nranks=2, value_bytes=4)
    d.append(0, 7, b"aaaa")
    d.end_epoch()
    d.append(1, 7, b"bbbb")
    d.end_epoch()
    assert d.read(7, 0)[0] == b"aaaa"
    assert d.read(7, 1)[0] == b"bbbb"
    traj = d.read_all_epochs(7)
    assert [v for _, v, _ in traj] == [b"aaaa", b"bbbb"]


def test_append_batch_fast_path():
    d = IndexedDirectory(nranks=4, value_bytes=16, fmt=FMT_BASE)
    batch = random_kv_batch(500, 16, rng=1)
    d.append_batch(2, batch)
    assert d.pending_records == 500
    d.end_epoch()
    for i in (0, 99, 499):
        v, qs = d.read(int(batch.keys[i]), 0)
        assert qs.found and v == batch.value_of(i)


def test_value_width_enforced():
    d = IndexedDirectory(nranks=2, value_bytes=8)
    with pytest.raises(ValueError):
        d.append(0, 1, b"short")
    with pytest.raises(ValueError):
        d.append_batch(0, random_kv_batch(3, 4))


def test_rank_validated():
    d = IndexedDirectory(nranks=2, value_bytes=4)
    with pytest.raises(ValueError):
        d.append(2, 1, b"xxxx")
    with pytest.raises(ValueError):
        d.append(-1, 1, b"xxxx")


def test_empty_epoch_rejected():
    d = IndexedDirectory(nranks=2, value_bytes=4)
    with pytest.raises(ValueError):
        d.end_epoch()


def test_some_ranks_silent_is_fine():
    d = IndexedDirectory(nranks=4, value_bytes=4)
    d.append(1, 5, b"only")
    stats = d.end_epoch()
    assert stats.records == 1
    assert d.read(5, 0)[0] == b"only"


def test_describe_and_epochs():
    d = IndexedDirectory(nranks=2, value_bytes=4, fmt=FMT_FILTERKV)
    d.append(0, 9, b"zzzz")
    d.end_epoch()
    assert d.epochs == [0]
    assert "filterkv" in d.describe()


def test_zero_width_values():
    """Pure-key directories (membership datasets) are legal."""
    d = IndexedDirectory(nranks=2, value_bytes=0)
    d.append(0, 77, b"")
    d.end_epoch()
    v, qs = d.read(77, 0)
    assert qs.found and v == b""
