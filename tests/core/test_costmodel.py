"""Tests for the write-phase cost model against the paper's claims."""

import pytest

from repro.cluster.machines import NARWHAL, TRINITY_KNL
from repro.core.costmodel import WriteRunConfig, WritePhaseResult, model_write_phase
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV


def narwhal_cfg(fmt, nprocs=256, kv=64, resid=0.5):
    return WriteRunConfig(
        fmt=fmt,
        machine=NARWHAL,
        nprocs=nprocs,
        kv_bytes=kv,
        data_per_proc=960e6,
        residual_fraction=resid,
    )


def test_slowdown_ordering_fig8():
    """Fig. 8: FilterKV < DataPtr < Base at every job size."""
    for nprocs in (64, 128, 256, 384, 512, 640):
        s = {
            f.name: model_write_phase(narwhal_cfg(f, nprocs)).slowdown
            for f in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV)
        }
        assert s["filterkv"] < s["dataptr"] < s["base"]


def test_base_slowdown_grows_steeply_with_job_size():
    small = model_write_phase(narwhal_cfg(FMT_BASE, 64)).slowdown
    big = model_write_phase(narwhal_cfg(FMT_BASE, 640)).slowdown
    assert big > 4 * small
    assert big > 5.0  # several-hundred-percent territory (Fig. 8b)


def test_higher_residual_bandwidth_helps():
    """Fig. 8b vs 8c: more residual bandwidth, less slowdown."""
    for f in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        lo = model_write_phase(narwhal_cfg(f, 256, resid=0.5)).slowdown
        hi = model_write_phase(narwhal_cfg(f, 256, resid=0.75)).slowdown
        assert hi <= lo + 1e-9


def test_kv_size_sweep_fig9():
    """Fig. 9: indirection formats improve as KV size grows; base doesn't."""
    base = [model_write_phase(narwhal_cfg(FMT_BASE, kv=k)).slowdown for k in (16, 64, 192)]
    dptr = [model_write_phase(narwhal_cfg(FMT_DATAPTR, kv=k)).slowdown for k in (16, 64, 192)]
    fkv = [model_write_phase(narwhal_cfg(FMT_FILTERKV, kv=k)).slowdown for k in (16, 64, 192)]
    assert abs(base[0] - base[-1]) / max(base) < 0.2  # base ~flat
    assert dptr[0] > dptr[-1]  # indirection overhead shrinks with KV size
    assert fkv[0] > fkv[-1]
    assert all(f < d for f, d in zip(fkv, dptr))


def test_rpc_message_counts_ordering_fig8a():
    msgs = {
        f.name: model_write_phase(narwhal_cfg(f, 640)).rpc_messages_total
        for f in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV)
    }
    assert msgs["filterkv"] < msgs["dataptr"] < msgs["base"]
    # Base ships ~64 B/record → ~(960 MB × 639/640)/16 KB messages per proc.
    assert msgs["base"] == pytest.approx(640 * 960e6 * (639 / 640) / 16384, rel=0.02)


def test_trinity_storage_bandwidth_effect_fig10():
    """Fig. 10a: higher storage bandwidth → partitioning overhead matters
    more; FilterKV stays closest to plain writes."""
    slow = {}
    for bw_per_node in (11e9 / 64, 28e9 / 64):
        for f in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
            cfg = WriteRunConfig(
                fmt=f,
                machine=TRINITY_KNL.with_storage_bandwidth(bw_per_node),
                nprocs=4096,
                kv_bytes=64,
                data_per_proc=488e6,
            )
            slow[(bw_per_node, f.name)] = model_write_phase(cfg).slowdown
    hi, lo = 28e9 / 64, 11e9 / 64
    # All formats hurt more at higher storage bandwidth.
    for f in ("base", "dataptr", "filterkv"):
        assert slow[(hi, f)] > slow[(lo, f)]
    # At high bandwidth FilterKV wins big (paper: 3.3× vs base, 2.8× vs SoA).
    assert slow[(hi, "base")] / slow[(hi, "filterkv")] > 2.0
    assert slow[(hi, "dataptr")] / slow[(hi, "filterkv")] > 1.5
    # At low bandwidth DataPtr is the worst (writes the most data).
    assert slow[(lo, "dataptr")] > slow[(lo, "base")]
    assert slow[(lo, "dataptr")] > 1.5 * slow[(lo, "filterkv")]


def test_tcp_vs_gni_fig10b():
    """Fig. 10b: FilterKV on TCP ≈ FilterKV on GNI (network barely matters)."""
    out = {}
    for transport in ("gni", "tcp"):
        cfg = WriteRunConfig(
            fmt=FMT_FILTERKV,
            machine=TRINITY_KNL.with_transport(transport).with_storage_bandwidth(28e9 / 64),
            nprocs=4096,
            kv_bytes=64,
            data_per_proc=488e6,
        )
        out[transport] = model_write_phase(cfg).slowdown
    assert out["tcp"] == pytest.approx(out["gni"], rel=0.35, abs=0.1)
    # The same swap hurts the base format much more.
    base = {}
    for transport in ("gni", "tcp"):
        cfg = WriteRunConfig(
            fmt=FMT_BASE,
            machine=TRINITY_KNL.with_transport(transport).with_storage_bandwidth(28e9 / 64),
            nprocs=4096,
            kv_bytes=64,
            data_per_proc=488e6,
        )
        base[transport] = model_write_phase(cfg).slowdown
    assert base["tcp"] - base["gni"] > out["tcp"] - out["gni"]


def test_result_components():
    r = model_write_phase(narwhal_cfg(FMT_BASE))
    assert isinstance(r, WritePhaseResult)
    assert r.t_run == pytest.approx(max(r.t_storage, r.t_shuffle) + r.t_cpu)
    assert r.bottleneck in ("storage", "network")
    assert r.shuffle_bytes_total > 0 and r.storage_bytes_total > 0


def test_config_validation():
    with pytest.raises(ValueError):
        narwhal_cfg(FMT_BASE, nprocs=1)
    with pytest.raises(ValueError):
        WriteRunConfig(FMT_BASE, NARWHAL, 4, kv_bytes=8, data_per_proc=1e6)
    with pytest.raises(ValueError):
        WriteRunConfig(FMT_BASE, NARWHAL, 4, kv_bytes=64, data_per_proc=0)
    with pytest.raises(ValueError):
        WriteRunConfig(FMT_BASE, NARWHAL, 4, kv_bytes=64, data_per_proc=1e6, batch_bytes=1)
    with pytest.raises(ValueError):
        WriteRunConfig(
            FMT_BASE, NARWHAL, 4, kv_bytes=64, data_per_proc=1e6, residual_fraction=1.5
        )
