"""Unit tests for format byte accounting (the paper's Fig. 3 table)."""

import pytest

from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV, FORMATS


V = 56  # 64-byte KV pairs, the paper's staple
N = 4096


def test_registry():
    assert set(FORMATS) == {"base", "dataptr", "filterkv"}


def test_base_accounting():
    assert FMT_BASE.shuffle_bytes_per_record(V, N) == 64
    assert FMT_BASE.local_bytes_per_record(V, N) == 0
    assert FMT_BASE.remote_bytes_per_record(V, N) == 64
    assert FMT_BASE.index_bytes_per_key(N) == 0
    assert FMT_BASE.storage_blowup(V, N) == 1.0


def test_dataptr_accounting():
    # Ships key + 8-byte offset; stores value locally plus key + 12-byte
    # pointer remotely (§III-B/C).
    assert FMT_DATAPTR.shuffle_bytes_per_record(V, N) == 16
    assert FMT_DATAPTR.local_bytes_per_record(V, N) == 56
    assert FMT_DATAPTR.remote_bytes_per_record(V, N) == 20
    assert FMT_DATAPTR.index_bytes_per_key(N) == 12
    assert FMT_DATAPTR.storage_blowup(V, N) == pytest.approx(76 / 64)


def test_filterkv_accounting():
    assert FMT_FILTERKV.shuffle_bytes_per_record(V, N) == 8
    assert FMT_FILTERKV.local_bytes_per_record(V, N) == 64
    # 4-bit fingerprint + 12 rank bits at 95 % utilization ≈ 2.1 B.
    assert FMT_FILTERKV.remote_bytes_per_record(V, N) == pytest.approx(2.105, abs=0.01)
    assert FMT_FILTERKV.storage_blowup(V, N) == pytest.approx(66.1 / 64, abs=0.01)


def test_shuffle_ordering_is_the_paper_headline():
    """FilterKV < DataPtr < Base on the network, for every KV size."""
    for v in (8, 24, 56, 184):
        b = FMT_BASE.shuffle_bytes_per_record(v, N)
        d = FMT_DATAPTR.shuffle_bytes_per_record(v, N)
        f = FMT_FILTERKV.shuffle_bytes_per_record(v, N)
        assert f < d <= b or (v <= 8 and f < d)


def test_storage_ordering_flips():
    """On storage, Base is leanest; DataPtr pays the most (§V-A)."""
    for v in (24, 56, 184):
        b = FMT_BASE.storage_bytes_per_record(v, N)
        d = FMT_DATAPTR.storage_bytes_per_record(v, N)
        f = FMT_FILTERKV.storage_bytes_per_record(v, N)
        assert b < f < d


def test_index_overhead_vs_paper_fig7b():
    """FilterKV ≈ 1.5–3.5 B/key across 1 K–16 M partitions vs 12 B."""
    for nparts, lo, hi in ((1 << 10, 1.5, 2.0), (1 << 20, 2.5, 3.5), (16_000_000, 3.2, 4.0)):
        x = FMT_FILTERKV.index_bytes_per_key(nparts)
        assert lo < x < hi
        assert FMT_DATAPTR.index_bytes_per_key(nparts) == 12


def test_index_overhead_grows_logarithmically():
    xs = [FMT_FILTERKV.index_bytes_per_key(1 << q) for q in range(10, 25, 2)]
    deltas = [b - a for a, b in zip(xs, xs[1:])]
    assert all(d == pytest.approx(2 / 8 / 0.95, abs=1e-6) for d in deltas)


def test_cpu_cost_ordering():
    """DataPtr does the most per-record work; FilterKV the least."""
    assert FMT_FILTERKV.per_record_cpu_us < FMT_BASE.per_record_cpu_us
    assert FMT_BASE.per_record_cpu_us < FMT_DATAPTR.per_record_cpu_us
