"""Property-based tests for core invariants (partitioning, formats, model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machines import NARWHAL
from repro.core.costmodel import WriteRunConfig, model_write_phase
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.partitioning import HashPartitioner


@given(
    nparts=st.integers(min_value=1, max_value=500),
    keys=st.lists(st.integers(min_value=0, max_value=2**63 - 1), min_size=1, max_size=300),
)
@settings(max_examples=60, deadline=None)
def test_partitioner_total_and_consistent(nparts, keys):
    p = HashPartitioner(nparts)
    arr = np.asarray(keys, dtype=np.uint64)
    dest = p.partition_of(arr)
    assert ((0 <= dest) & (dest < nparts)).all()
    groups = p.split(arr)
    assert sum(g.size for g in groups) == arr.size
    for d, idx in enumerate(groups):
        assert (dest[idx] == d).all()


@given(
    value_bytes=st.integers(min_value=0, max_value=1024),
    nparts=st.integers(min_value=2, max_value=10_000_000),
)
@settings(max_examples=80, deadline=None)
def test_format_byte_identities(value_bytes, nparts):
    """Structural invariants of the byte accounting, for any (V, N)."""
    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        shuffled = fmt.shuffle_bytes_per_record(value_bytes, nparts)
        stored = fmt.storage_bytes_per_record(value_bytes, nparts)
        assert shuffled > 0
        assert stored >= value_bytes  # the value must land somewhere
        assert fmt.index_bytes_per_key(nparts) >= 0
    # FilterKV never ships more than DataPtr, which never ships more than
    # base (keys ⊆ keys+offsets ⊆ whole records).
    f = FMT_FILTERKV.shuffle_bytes_per_record(value_bytes, nparts)
    d = FMT_DATAPTR.shuffle_bytes_per_record(value_bytes, nparts)
    b = FMT_BASE.shuffle_bytes_per_record(value_bytes, nparts)
    assert f <= d
    assert d <= b or value_bytes < 8  # base can undercut only for tiny values
    # FilterKV's index is always smaller than the 12-byte pointer.
    assert FMT_FILTERKV.index_bytes_per_key(nparts) < FMT_DATAPTR.index_bytes_per_key(nparts)


@given(
    nprocs=st.integers(min_value=2, max_value=2048),
    kv=st.integers(min_value=9, max_value=512),
    resid=st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_costmodel_sanity(nprocs, kv, resid):
    """The model never returns negative times, and t_plain ≤ t_run for the
    base format (partitioning cannot be faster than not partitioning)."""
    r = model_write_phase(
        WriteRunConfig(
            fmt=FMT_BASE,
            machine=NARWHAL,
            nprocs=nprocs,
            kv_bytes=kv,
            data_per_proc=1e8,
            residual_fraction=resid,
        )
    )
    assert r.t_plain > 0
    assert r.t_storage >= 0 and r.t_shuffle >= 0 and r.t_cpu >= 0
    assert r.t_run >= r.t_plain - 1e-9
    assert r.slowdown >= -1e-9


@given(kv=st.integers(min_value=9, max_value=512))
@settings(max_examples=40, deadline=None)
def test_filterkv_never_shuffles_more_than_dataptr(kv):
    a = model_write_phase(
        WriteRunConfig(FMT_FILTERKV, NARWHAL, 64, kv, 1e8, residual_fraction=0.5)
    )
    b = model_write_phase(
        WriteRunConfig(FMT_DATAPTR, NARWHAL, 64, kv, 1e8, residual_fraction=0.5)
    )
    assert a.shuffle_bytes_total <= b.shuffle_bytes_total
    assert a.rpc_messages_total <= b.rpc_messages_total


@given(
    resid_lo=st.floats(min_value=0.05, max_value=0.5),
    resid_hi=st.floats(min_value=0.5, max_value=1.0),
)
@settings(max_examples=30, deadline=None)
def test_more_residual_bandwidth_never_hurts(resid_lo, resid_hi):
    def slow(r):
        return model_write_phase(
            WriteRunConfig(FMT_BASE, NARWHAL, 256, 64, 1e8, residual_fraction=r)
        ).slowdown

    assert slow(resid_hi) <= slow(resid_lo) + 1e-9
