"""Epoch compaction: merge equivalence, manifest swap, id monotonicity.

The invariant under test everywhere: compaction changes *where* bytes
live, never *what* a query answers.  Ground truth is always the
pre-compaction store's own newest-wins view.
"""

import numpy as np
import pytest

from repro.core.compact import CompactionPolicy, Compactor
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import KVBatch, random_kv_batch
from repro.core.multiepoch import MultiEpochStore
from repro.storage.manifest import Manifest

ALL_FORMATS = [FMT_BASE, FMT_DATAPTR, FMT_FILTERKV]
VB = 24


@pytest.fixture(params=ALL_FORMATS, ids=lambda f: f.name)
def fmt(request):
    return request.param


def _overlapping_epochs(store, nepochs=3, n=150, seed=11, overlap=0.4):
    """Write epochs where a slice of each dump rewrites earlier keys.

    Keys are unique *within* each epoch (one writer per key per dump), so
    the newest-wins ground truth ``{key: value}`` returned here is exactly
    the pre-compaction store's own cross-epoch view.
    """
    rng = np.random.default_rng(seed)
    truth: dict[int, bytes] = {}
    prev: np.ndarray | None = None
    for _ in range(nepochs):
        keys = np.unique(
            rng.integers(0, 2**63, size=n * store.nranks, dtype=np.uint64)
        )
        if prev is not None and overlap > 0:
            k = int(keys.size * overlap)
            keys[:k] = rng.choice(prev, size=k, replace=False)
            keys = np.unique(keys)
        rng.shuffle(keys)
        values = rng.integers(0, 256, size=(keys.size, VB), dtype=np.uint8)
        splits = np.array_split(np.arange(keys.size), store.nranks)
        store.write_epoch([KVBatch(keys[s], values[s]) for s in splits])
        prev = keys.copy()
        for key, value in zip(keys.tolist(), values):
            truth[int(key)] = bytes(value)
    return truth


def test_merge_serves_newest_wins_union(fmt):
    store = MultiEpochStore(nranks=4, fmt=fmt, value_bytes=VB)
    truth = _overlapping_epochs(store)
    sources = list(store.epochs)

    report = store.compact()

    assert store.epochs == [report.merged_epoch]
    assert report.source_epochs == sources
    assert report.records_out == len(truth)
    assert report.records_in > report.records_out  # overlap deduped
    for key, expected in truth.items():
        value, found, _ = store.lookup(key)
        assert value == expected
        assert found == report.merged_epoch
    miss, found, _ = store.lookup(1)  # random 63-bit keys: 1 is absent
    assert miss is None and found is None
    store.close()


def test_merge_equivalence_bulk_and_cold_paths(fmt):
    store = MultiEpochStore(nranks=4, fmt=fmt, value_bytes=VB)
    truth = _overlapping_epochs(store)
    keys = np.fromiter(truth, dtype=np.uint64)
    before, _, _ = store.lookup_many(keys)

    store.compact()

    after, _, _ = store.lookup_many(keys)
    assert before == after == [truth[int(k)] for k in keys]
    # The cold path (fresh readers, no warm caches) agrees too.
    for k in keys[:32]:
        assert store.lookup(int(k), cached=False)[0] == truth[int(k)]
    store.close()


def test_disjoint_epochs_merge_losslessly(fmt):
    store = MultiEpochStore(nranks=2, fmt=fmt, value_bytes=VB)
    truth = _overlapping_epochs(store, nepochs=2, overlap=0.0)
    report = store.compact()
    assert report.records_in == report.records_out == len(truth)
    for key, expected in list(truth.items())[:64]:
        assert store.lookup(key)[0] == expected
    store.close()


def test_subset_compaction_leaves_other_epochs_alone(fmt):
    store = MultiEpochStore(nranks=4, fmt=fmt, value_bytes=VB)
    truth = _overlapping_epochs(store, nepochs=4)

    report = store.compact([0, 1])

    # The merged epoch holds the *oldest* data, so it sits at the back of
    # the recency walk despite carrying the highest id.
    assert store.epochs == [report.merged_epoch, 2, 3]
    assert report.merged_epoch == 4
    for key, expected in truth.items():
        assert store.lookup(key)[0] == expected
    store.close()


def test_non_adjacent_sources_are_rejected(fmt):
    """First-write-wins merging over a gap would shadow the live epoch
    sitting in it — the compactor refuses outright."""
    store = MultiEpochStore(nranks=2, fmt=fmt, value_bytes=VB)
    _overlapping_epochs(store, nepochs=3)
    with pytest.raises(ValueError, match="not adjacent"):
        store.compact([0, 2])
    store.close()


def test_second_generation_subset_compaction_keeps_recency(fmt):
    """A merged epoch participates in later merges at its *data* recency,
    not its id: compact [0,1] -> 4 (old data), then [4, 2] -> 5; epoch 3
    must still shadow everything."""
    store = MultiEpochStore(nranks=2, fmt=fmt, value_bytes=VB)
    truth = _overlapping_epochs(store, nepochs=4)
    before = {k: store.lookup(k)[0] for k in list(truth)[:128]}

    first = store.compact([0, 1])
    second = store.compact([first.merged_epoch, 2])

    assert store.epochs == [second.merged_epoch, 3]
    for key, expected in before.items():
        assert store.lookup(key)[0] == expected == truth[key]
    store.close()


def test_merged_manifest_persists_and_attaches(fmt):
    store = MultiEpochStore(nranks=4, fmt=fmt, value_bytes=VB)
    truth = _overlapping_epochs(store)
    report = store.compact()
    store.close()

    reopened = MultiEpochStore.attach(store.device)
    assert reopened.epochs == [report.merged_epoch]
    assert reopened.manifest.next_epoch == report.merged_epoch + 1
    for src in report.source_epochs:
        assert reopened.resolve_epoch(src) == report.merged_epoch
    for key, expected in list(truth.items())[:64]:
        assert reopened.lookup(key)[0] == expected
    reopened.close()


def test_retired_epoch_ids_stay_addressable(fmt):
    store = MultiEpochStore(nranks=4, fmt=fmt, value_bytes=VB)
    truth = _overlapping_epochs(store)
    key = next(iter(truth))
    via_retired_before = store.get(key, 0)[0]
    report = store.compact()
    # The retired id forwards to the merged epoch's (newest-wins) view.
    assert store.resolve_epoch(0) == report.merged_epoch
    value, _ = store.get(key, 0)
    assert value == truth[key]
    assert via_retired_before is None or value is not None
    with pytest.raises(KeyError):
        store.resolve_epoch(999)
    store.close()


def test_epoch_ids_never_reused(fmt):
    """Satellite: the id watermark survives compaction, attach, and the
    next ingest — a retired id can never alias a fresh epoch."""
    store = MultiEpochStore(nranks=2, fmt=fmt, value_bytes=VB)
    _overlapping_epochs(store, nepochs=3)
    report = store.compact()
    assert report.merged_epoch == 3  # ids 0..2 were taken
    assert store.manifest.next_epoch == 4

    rng = np.random.default_rng(5)
    store.write_epoch([random_kv_batch(50, VB, rng) for _ in range(2)])
    assert store.epochs == [3, 4]

    store.close()
    reopened = MultiEpochStore.attach(store.device)
    assert reopened.manifest.next_epoch == 5
    rng = np.random.default_rng(6)
    reopened.write_epoch([random_kv_batch(50, VB, rng) for _ in range(2)])
    assert reopened.epochs == [3, 4, 5]

    # Second-generation compaction: mappings re-point transitively.
    second = reopened.compact()
    assert second.merged_epoch == 6
    assert reopened.resolve_epoch(0) == 6  # 0 -> 3 -> 6
    assert reopened.resolve_epoch(4) == 6
    reopened.close()


def test_compaction_roundtrip_through_manifest_bytes(fmt):
    store = MultiEpochStore(nranks=2, fmt=fmt, value_bytes=VB)
    _overlapping_epochs(store, nepochs=2)
    store.compact()
    doc = Manifest.from_bytes(store.manifest.to_bytes())
    assert doc.next_epoch == store.manifest.next_epoch
    assert doc.compacted == store.manifest.compacted
    store.close()


def test_single_epoch_is_not_compactable(fmt):
    store = MultiEpochStore(nranks=2, fmt=fmt, value_bytes=VB)
    _overlapping_epochs(store, nepochs=1)
    assert store.compact() is None  # nothing to merge
    with pytest.raises(ValueError):
        Compactor(store).run([0])
    store.close()


def test_unknown_source_epoch_raises(fmt):
    store = MultiEpochStore(nranks=2, fmt=fmt, value_bytes=VB)
    _overlapping_epochs(store, nepochs=2)
    with pytest.raises(KeyError):
        store.compact([0, 7])
    store.close()


def test_empty_partitions_merge_cleanly(fmt):
    """Every rank owns a table in the merged epoch even when a rank's
    slice of the keyspace is empty."""
    store = MultiEpochStore(nranks=4, fmt=fmt, value_bytes=VB)
    rng = np.random.default_rng(3)
    for _ in range(2):
        batches = [
            random_kv_batch(8 if r == 0 else 0, VB, rng) for r in range(4)
        ]
        store.write_epoch(batches)
    report = store.compact()
    for rank in range(4):
        assert store.device.exists(f"part.{report.merged_epoch:03d}.{rank:06d}")
    store.close()


def test_policy_bounds_live_epoch_count(fmt):
    policy = CompactionPolicy(max_live_epochs=3, merge_factor=8)
    store = MultiEpochStore(nranks=2, fmt=fmt, value_bytes=VB, compaction=policy)
    rng = np.random.default_rng(7)
    truth = {}
    for _ in range(7):
        batches = [random_kv_batch(60, VB, rng) for _ in range(2)]
        store.write_epoch(batches)
        for b in batches:
            for i, k in enumerate(b.keys):
                truth[int(k)] = b.value_of(i)
        assert len(store.epochs) < 3 + 1  # the hook keeps the count bounded
    assert store.compactions >= 2
    for key, expected in list(truth.items())[:64]:
        assert store.lookup(key)[0] == expected
    store.close()


def test_policy_merges_smallest_epochs_first():
    policy = CompactionPolicy(max_live_epochs=2, merge_factor=2)
    store = MultiEpochStore(nranks=2, fmt=FMT_BASE, value_bytes=VB)
    rng = np.random.default_rng(9)
    store.write_epoch([random_kv_batch(400, VB, rng) for _ in range(2)])  # big
    store.write_epoch([random_kv_batch(20, VB, rng) for _ in range(2)])  # small
    store.write_epoch([random_kv_batch(20, VB, rng) for _ in range(2)])  # small
    picked = policy.select(store.manifest)
    assert picked == [1, 2]
    store.close()


def test_policy_validates_parameters():
    with pytest.raises(ValueError):
        CompactionPolicy(max_live_epochs=1)
    with pytest.raises(ValueError):
        CompactionPolicy(merge_factor=1)


def test_compaction_emits_telemetry(fmt):
    from repro.obs import MetricsRegistry
    from repro.storage.blockio import StorageDevice

    device = StorageDevice(metrics=MetricsRegistry("compact-test"))
    store = MultiEpochStore(nranks=2, fmt=fmt, value_bytes=VB, device=device)
    _overlapping_epochs(store, nepochs=2)
    report = store.compact()
    reg = store.device.metrics
    assert reg.total("compaction.runs") == 1
    assert reg.total("compaction.epochs_retired") == 2
    assert reg.total("compaction.records_out") == report.records_out
    assert reg.total("compaction.bytes_reclaimed") == report.bytes_reclaimed
    store.close()


def test_compaction_is_handle_neutral(fmt):
    """The merge opens readers and writers but releases every one."""
    store = MultiEpochStore(nranks=4, fmt=fmt, value_bytes=VB)
    _overlapping_epochs(store)
    before = store.device.open_handles
    store.compact()
    assert store.device.open_handles == before
    store.close()
