"""Bulk-vs-scalar equivalence for the vectorized read path.

`QueryEngine.get_many` must be *value- and probe-equivalent* to the
scalar loop ``[engine.get(k) for k in keys]``:

* byte-identical values and identical per-key ``found`` /
  ``partitions_searched``;
* identical aggregate probe counters (``aux.probes``, ``aux.candidates``,
  ``reader.queries`` / ``hits`` / ``partitions_probed``);
* aggregate device reads/bytes **at most** the scalar loop's — the
  reduction from block coalescing is the optimization under test, so
  equality is not required (or wanted) there.
"""

import numpy as np
import pytest

from repro.cluster import SimCluster
from repro.core import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.reader import CachedQueryEngine, QueryEngine
from repro.obs import MetricsRegistry

FORMATS = [FMT_BASE, FMT_DATAPTR, FMT_FILTERKV]
NRANKS = 6
RECORDS = 900


@pytest.fixture(scope="module", params=FORMATS, ids=lambda f: f.name)
def dataset(request):
    fmt = request.param
    cluster = SimCluster(
        nranks=NRANKS,
        fmt=fmt,
        value_bytes=24,
        records_hint=NRANKS * RECORDS,
        block_size=1 << 12,
        seed=11,
    )
    batches = [
        random_kv_batch(RECORDS, 24, np.random.default_rng(70 + r))
        for r in range(NRANKS)
    ]
    for rank, b in enumerate(batches):
        cluster.put(rank, b)
    cluster.finish_epoch()
    stored = np.concatenate([b.keys for b in batches])
    return cluster, stored


def _engine(cluster, cached, metrics):
    cold = cluster.query_engine()
    cls = CachedQueryEngine if cached else QueryEngine
    return cls(
        device=cold.device,
        fmt=cold.fmt,
        nranks=cold.nranks,
        partitioner=cold.partitioner,
        aux_tables=cold.aux_tables,
        epoch=cold.epoch,
        metrics=metrics,
    )


def _query_mix(stored, rng, n=400, absent_frac=0.15, dup_frac=0.1):
    present = rng.choice(stored, size=n, replace=False)
    absent = rng.integers(1 << 48, 1 << 49, size=int(n * absent_frac), dtype=np.uint64)
    dups = rng.choice(present, size=int(n * dup_frac), replace=True)
    q = np.concatenate([present, absent, dups])
    rng.shuffle(q)
    return q


PROBE_COUNTERS = (
    "reader.queries",
    "reader.hits",
    "reader.partitions_probed",
    "reader.candidates",
    "aux.probes",
    "aux.candidates",
    "aux.false_candidates",
)


def _assert_equivalent(cluster, keys, cached):
    m_s, m_b = MetricsRegistry(), MetricsRegistry()
    scalar, bulk = _engine(cluster, cached, m_s), _engine(cluster, cached, m_b)
    dev = cluster.query_engine().device

    s_vals, s_stats = [], []
    before = dev.counters.snapshot()
    for k in keys:
        v, st = scalar.get(int(k))
        s_vals.append(v)
        s_stats.append(st)
    s_io = dev.counters.delta(before)
    scalar.close()

    before = dev.counters.snapshot()
    b_vals, b_stats = bulk.get_many(keys)
    b_io = dev.counters.delta(before)
    bulk.close()

    assert b_vals == s_vals
    assert [s.found for s in b_stats] == [s.found for s in s_stats]
    assert [s.partitions_searched for s in b_stats] == [
        s.partitions_searched for s in s_stats
    ]
    for name in PROBE_COUNTERS:
        assert m_b.total(name) == m_s.total(name), name
    # Per-key stats attribute shared I/O to group leads: aggregates stay
    # exact, matching what the device actually saw.
    assert sum(s.reads for s in b_stats) == b_io.reads
    assert sum(s.bytes_read for s in b_stats) == b_io.bytes_read
    if len(keys):
        assert b_io.reads <= s_io.reads
        assert b_io.bytes_read <= s_io.bytes_read
    return s_io, b_io


@pytest.mark.parametrize("cached", [False, True], ids=["cold", "cached"])
def test_bulk_matches_scalar(dataset, cached):
    cluster, stored = dataset
    keys = _query_mix(stored, np.random.default_rng(3))
    _assert_equivalent(cluster, keys, cached)


def test_bulk_coalescing_actually_reduces_io(dataset):
    cluster, stored = dataset
    keys = _query_mix(stored, np.random.default_rng(5))
    s_io, b_io = _assert_equivalent(cluster, keys, cached=True)
    assert b_io.reads < s_io.reads  # the point of the batch path


def test_empty_and_singleton_batches(dataset):
    cluster, stored = dataset
    engine = _engine(cluster, cached=True, metrics=MetricsRegistry())
    values, stats = engine.get_many(np.zeros(0, dtype=np.uint64))
    assert values == [] and stats == []
    one = np.asarray([stored[0]], dtype=np.uint64)
    v_bulk, st_bulk = engine.get_many(one)
    v_scal, st_scal = engine.get(int(stored[0]))
    assert v_bulk == [v_scal]
    assert st_bulk[0].found and st_scal.found
    engine.close()


def test_duplicate_keys_each_fully_answered(dataset):
    cluster, stored = dataset
    engine = _engine(cluster, cached=True, metrics=MetricsRegistry())
    k = stored[7]
    keys = np.asarray([k, k, k, k], dtype=np.uint64)
    values, stats = engine.get_many(keys)
    assert values[0] is not None
    assert values == [values[0]] * 4
    assert all(s.found for s in stats)
    engine.close()


def test_all_absent_batch(dataset):
    cluster, _ = dataset
    engine = _engine(cluster, cached=True, metrics=MetricsRegistry())
    keys = np.arange(1 << 50, (1 << 50) + 32, dtype=np.uint64)
    values, stats = engine.get_many(keys)
    assert values == [None] * 32
    assert not any(s.found for s in stats)
    engine.close()


def test_uncached_bulk_releases_handles(dataset):
    cluster, stored = dataset
    dev = cluster.query_engine().device
    engine = _engine(cluster, cached=False, metrics=MetricsRegistry())
    before = dev.open_handles
    engine.get_many(stored[:64])
    assert dev.open_handles == before  # no leaked tables or vlogs
    engine.close()


def test_batch_telemetry_recorded(dataset):
    cluster, stored = dataset
    metrics = MetricsRegistry()
    engine = _engine(cluster, cached=True, metrics=metrics)
    engine.get_many(stored[:128])
    fmt = cluster.query_engine().fmt.name
    assert metrics.total("reader.batch_keys", format=fmt) == 128
    blocks = metrics.histogram("reader.batch_blocks_decoded", format=fmt)
    ratio = metrics.histogram("reader.batch_coalescing_ratio", format=fmt)
    assert blocks.count == 1
    assert ratio.count == 1
    assert ratio.quantile(0.5) >= 1.0  # >= one key resolved per decoded block
    engine.close()
