"""Tests for shuffle routing (direct vs 3-hop aggregation)."""

import numpy as np
import pytest

from repro.cluster.simcluster import SimCluster
from repro.core.formats import FMT_FILTERKV
from repro.core.pipeline import Envelope
from repro.core.routing import DirectRouter, ThreeHopRouter


def _env(src, dest, nbytes=100):
    return Envelope(src, dest, b"x" * nbytes, nrecords=1)


class TestDirectRouter:
    def test_counts_wire_messages(self):
        got = []
        r = DirectRouter(got.append, ppn=2)
        r.send(_env(0, 3))  # node 0 → node 1: wire
        r.send(_env(0, 1))  # same node: local
        r.send(_env(2, 2))  # self: neither
        assert r.wire_messages == 1
        assert r.local_messages == 1
        assert r.wire_bytes == 100
        assert len(got) == 3  # everything delivered


class TestThreeHopRouter:
    def test_aggregates_until_batch_full(self):
        got = []
        r = ThreeHopRouter(got.append, ppn=2, batch_bytes=250)
        r.send(_env(0, 2))  # node 0 → node 1, buffered (100 B)
        r.send(_env(1, 3))  # same node pair, buffered (200 B)
        assert r.wire_messages == 0
        assert got == []
        r.send(_env(0, 3))  # 300 B ≥ 250: ships one aggregated message
        assert r.wire_messages == 1
        assert r.wire_bytes == 300
        assert len(got) == 3

    def test_flush_ships_partials(self):
        got = []
        r = ThreeHopRouter(got.append, ppn=2, batch_bytes=10_000)
        r.send(_env(0, 2))
        r.send(_env(2, 0))
        assert r.pending_bytes == 200
        r.flush()
        assert r.wire_messages == 2  # one per node pair
        assert len(got) == 2
        assert r.pending_bytes == 0

    def test_local_traffic_never_buffers(self):
        got = []
        r = ThreeHopRouter(got.append, ppn=4, batch_bytes=1000)
        r.send(_env(0, 3))  # same node
        r.send(_env(5, 5))  # self
        assert got and r.wire_messages == 0 and r.pending_bytes == 0

    def test_hop_accounting(self):
        r = ThreeHopRouter(lambda e: None, ppn=2, batch_bytes=150)
        r.send(_env(0, 2))
        r.send(_env(0, 2))
        # hop1 ×2 (sender→rep) + hop3 ×2 (rep→dest) = 4 local messages.
        assert r.local_messages == 4
        assert r.wire_messages == 1

    def test_validates_batch(self):
        with pytest.raises(ValueError):
            ThreeHopRouter(lambda e: None, ppn=2, batch_bytes=1)


class TestClusterRouting:
    def _run(self, routing, records=3000):
        cluster = SimCluster(
            nranks=16,
            fmt=FMT_FILTERKV,
            value_bytes=56,
            routing=routing,
            ppn=4,
            records_hint=16 * records,
            seed=6,
        )
        return cluster, cluster.run_epoch(records)

    def test_3hop_reduces_wire_messages(self):
        """With small per-rank-pair tails, aggregation wins big (the
        DeltaFS motivation for representative-based routing)."""
        _, direct = self._run("direct")
        _, threehop = self._run("3hop")
        assert threehop.rpc_messages < direct.rpc_messages
        assert threehop.shuffle_bytes == direct.shuffle_bytes  # same payload
        assert threehop.local_messages > direct.local_messages

    def test_3hop_preserves_correctness(self):
        cluster, st = self._run("3hop")
        assert st.records == 16 * 3000
        assert sum(r.records_received for r in cluster.receivers) == st.records
        from repro.core.kv import random_kv_batch

        batch = random_kv_batch(3000, 56, np.random.default_rng(6))
        engine = cluster.query_engine()
        value, qs = engine.get(int(batch.keys[17]))
        assert qs.found and value == batch.value_of(17)

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError):
            SimCluster(nranks=4, routing="wormhole")
