"""Tests for the bounded-memory (spilling) FilterKV writer path."""

import numpy as np
import pytest

from repro.core.formats import FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.partitioning import HashPartitioner
from repro.core.pipeline import WriterState, main_table_name
from repro.storage.blockio import StorageDevice
from repro.storage.sstable import SSTableReader


def _writer(device, spill=None, rank=0, nranks=2):
    return WriterState(
        rank=rank,
        fmt=FMT_FILTERKV,
        partitioner=HashPartitioner(nranks),
        device=device,
        value_bytes=16,
        send=lambda env: None,
        spill_budget_bytes=spill,
    )


def test_spilling_writer_same_table_contents():
    batch = random_kv_batch(2000, 16, rng=1)
    dev_a, dev_b = StorageDevice(), StorageDevice()
    a = _writer(dev_a, spill=None)
    b = _writer(dev_b, spill=2048)  # tiny budget: many spills
    a.put_batch(batch)
    b.put_batch(batch)
    sa, sb = a.finish(), b.finish()
    assert sa.nentries == sb.nentries == 2000
    ra = SSTableReader(dev_a, main_table_name(0, 0))
    rb = SSTableReader(dev_b, main_table_name(0, 0))
    assert ra.scan() == rb.scan()


def test_spill_runs_visible_on_device():
    dev = StorageDevice()
    w = _writer(dev, spill=1024)
    w.put_batch(random_kv_batch(1000, 16, rng=2))
    assert len(w._runs.runs) > 3  # budget forced spills mid-burst
    w.finish()
    assert dev.exists("runs.000.000000")
    assert dev.exists(main_table_name(0, 0))


def test_memtable_stays_bounded_during_burst():
    dev = StorageDevice()
    w = _writer(dev, spill=4096)
    for _ in range(5):
        w.put_batch(random_kv_batch(500, 16, rng=3))
        assert w._memtable.size_bytes <= 4096 + 24  # one record of slack
    w.finish()


def test_duplicate_keys_first_wins_through_spills():
    dev = StorageDevice()
    w = _writer(dev, spill=256)
    from repro.core.kv import KVBatch

    keys = np.full(100, 7, dtype=np.uint64)
    vals = np.arange(1600, dtype=np.uint8).reshape(100, 16)
    w.put_batch(KVBatch(keys, vals))
    w.finish()
    r = SSTableReader(dev, main_table_name(0, 0))
    assert r.get(7) == vals[0].tobytes()
