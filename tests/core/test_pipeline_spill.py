"""Tests for the bounded-memory (spilling) FilterKV writer path."""

import numpy as np
import pytest

from repro.core.formats import FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.partitioning import HashPartitioner
from repro.core.pipeline import WriterState, main_table_name
from repro.storage.blockio import StorageDevice
from repro.storage.sstable import SSTableReader


def _writer(device, spill=None, rank=0, nranks=2, bulk=True, **kw):
    return WriterState(
        rank=rank,
        fmt=FMT_FILTERKV,
        partitioner=HashPartitioner(nranks),
        device=device,
        value_bytes=16,
        send=lambda env: None,
        spill_budget_bytes=spill,
        bulk=bulk,
        **kw,
    )


def test_spilling_writer_same_table_contents():
    batch = random_kv_batch(2000, 16, rng=1)
    dev_a, dev_b = StorageDevice(), StorageDevice()
    a = _writer(dev_a, spill=None)
    b = _writer(dev_b, spill=2048)  # tiny budget: many spills
    a.put_batch(batch)
    b.put_batch(batch)
    sa, sb = a.finish(), b.finish()
    assert sa.nentries == sb.nentries == 2000
    ra = SSTableReader(dev_a, main_table_name(0, 0))
    rb = SSTableReader(dev_b, main_table_name(0, 0))
    assert ra.scan() == rb.scan()


def test_spill_runs_visible_on_device():
    dev = StorageDevice()
    w = _writer(dev, spill=1024)
    w.put_batch(random_kv_batch(1000, 16, rng=2))
    assert len(w._runs.runs) > 3  # budget forced spills mid-burst
    w.finish()
    assert dev.exists("runs.000.000000")
    assert dev.exists(main_table_name(0, 0))


def test_memtable_stays_bounded_during_burst():
    dev = StorageDevice()
    w = _writer(dev, spill=4096)
    for _ in range(5):
        w.put_batch(random_kv_batch(500, 16, rng=3))
        assert w._memtable.size_bytes <= 4096 + 24  # one record of slack
    w.finish()


@pytest.mark.parametrize("bulk", [True, False])
def test_duplicate_keys_first_wins_through_spills(bulk):
    """First-write-wins must survive spilling and the flattening merge on
    both the vectorized path and the scalar reference."""
    dev = StorageDevice()
    w = _writer(dev, spill=256, bulk=bulk)
    from repro.core.kv import KVBatch

    keys = np.full(100, 7, dtype=np.uint64)
    vals = np.arange(1600, dtype=np.uint8).reshape(100, 16)
    w.put_batch(KVBatch(keys, vals))
    assert len(w._runs.runs) > 1  # the duplicates really crossed runs
    w.finish()
    r = SSTableReader(dev, main_table_name(0, 0))
    assert r.get(7) == vals[0].tobytes()


@pytest.mark.parametrize("bulk", [True, False])
def test_interleaved_duplicates_first_wins_across_runs(bulk):
    """Duplicates interleaved with other keys, landing in different runs:
    the earliest write must win after flatten, and every key must resolve."""
    dev = StorageDevice()
    w = _writer(dev, spill=512, bulk=bulk)
    from repro.core.kv import KVBatch

    rng = np.random.default_rng(17)
    keys = rng.integers(0, 50, size=400).astype(np.uint64)  # heavy duplication
    vals = rng.integers(0, 256, size=(400, 16)).astype(np.uint8)
    w.put_batch(KVBatch(keys, vals))
    w.finish()
    r = SSTableReader(dev, main_table_name(0, 0))
    first = {}
    for k, v in zip(keys.tolist(), vals):
        first.setdefault(k, v.tobytes())
    for k, expect in first.items():
        assert r.get(k) == expect


def test_spill_at_exact_byte_budget():
    """Records that land exactly on the budget boundary spill cleanly —
    the crossing record is included (scalar `add` semantics), nothing is
    dropped or double-counted."""
    dev = StorageDevice()
    # Record = 8 key + 16 value = 24 bytes; budget = 10 records exactly.
    w = _writer(dev, spill=240)
    batch = random_kv_batch(100, 16, rng=9)
    w.put_batch(batch)
    stats = w.finish()
    assert stats.nentries == 100
    assert all(run.nentries == 10 for run in w._runs.runs)
    r = SSTableReader(dev, main_table_name(0, 0))
    for i in range(100):
        assert r.get(int(batch.keys[i])) == batch.value_of(i)


@pytest.mark.parametrize("bulk", [True, False])
def test_wire_roundtrip_odd_batch_sizes(bulk):
    """Odd put sizes against a batch budget that is not a record multiple:
    every record must arrive intact, whole-record framing preserved."""
    from repro.core.kv import KVBatch
    from repro.core.pipeline import ReceiverState

    dev_w, dev_r = StorageDevice(), StorageDevice()
    recv = ReceiverState(
        rank=0, nranks=1, fmt=FMT_FILTERKV, device=dev_r, value_bytes=16, bulk=bulk
    )
    seen = []

    def deliver(env):
        assert len(env.payload) % 8 == 0 and env.nrecords == len(env.payload) // 8
        seen.append(env.nrecords)
        recv.deliver(env)

    w = WriterState(
        rank=0,
        fmt=FMT_FILTERKV,
        partitioner=HashPartitioner(1),
        device=dev_w,
        value_bytes=16,
        send=deliver,
        batch_bytes=100,  # not a multiple of the 8-byte wire record
        bulk=bulk,
    )
    rng = np.random.default_rng(23)
    total = 0
    for n in (1, 3, 7, 13, 101, 2, 50):
        keys = rng.integers(0, 1 << 60, size=n).astype(np.uint64)
        vals = rng.integers(0, 256, size=(n, 16)).astype(np.uint8)
        w.put_batch(KVBatch(keys, vals))
        total += n
    w.flush()
    recv.finish()
    assert sum(seen) == total
    assert recv.records_received == total
