"""Direct unit tests for WriterState / ReceiverState (below SimCluster)."""

import numpy as np
import pytest

from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.partitioning import HashPartitioner
from repro.core.pipeline import Envelope, ReceiverState, WriterState, main_table_name
from repro.storage.blockio import StorageDevice
from repro.storage.sstable import SSTableReader


def make_writer(fmt, sent, nranks=4, value_bytes=16, batch_bytes=256):
    device = StorageDevice()
    w = WriterState(
        rank=0,
        fmt=fmt,
        partitioner=HashPartitioner(nranks),
        device=device,
        value_bytes=value_bytes,
        send=sent.append,
        batch_bytes=batch_bytes,
    )
    return w, device


def test_writer_batches_by_destination():
    sent = []
    w, _ = make_writer(FMT_BASE, sent, batch_bytes=10_000)
    w.put_batch(random_kv_batch(200, 16, rng=1))
    assert sent == []  # under batch size: everything still buffered
    w.flush()
    assert 1 <= len(sent) <= 4
    dests = {e.dest for e in sent}
    assert dests <= {0, 1, 2, 3}
    assert sum(e.nrecords for e in sent) == 200


def test_writer_ships_full_batches_eagerly():
    sent = []
    w, _ = make_writer(FMT_BASE, sent, batch_bytes=256)
    w.put_batch(random_kv_batch(400, 16, rng=2))
    assert sent  # 400 records × 24 B / 4 dests ≫ 256 B per buffer
    # Batches respect record boundaries: payload divides evenly.
    for e in sent:
        assert len(e.payload) % 24 == 0
        assert len(e.payload) // 24 == e.nrecords


def test_writer_base_payload_encoding():
    sent = []
    w, _ = make_writer(FMT_BASE, sent, nranks=2, batch_bytes=64)
    batch = random_kv_batch(10, 16, rng=3)
    w.put_batch(batch)
    w.flush()
    raw = b"".join(e.payload for e in sorted(sent, key=lambda e: e.dest))
    assert len(raw) == 10 * 24
    # Keys embedded little-endian at each record start.
    keys = {int.from_bytes(raw[i : i + 8], "little") for i in range(0, len(raw), 24)}
    assert keys == {int(k) for k in batch.keys}


def test_writer_filterkv_payload_is_keys_only():
    sent = []
    w, dev = make_writer(FMT_FILTERKV, sent, nranks=2, batch_bytes=64)
    batch = random_kv_batch(50, 16, rng=4)
    w.put_batch(batch)
    stats = w.finish()
    assert stats is not None and stats.nentries == 50  # local main table
    total_payload = sum(len(e.payload) for e in sent)
    assert total_payload == 50 * 8
    # The local main table holds complete KV pairs.
    r = SSTableReader(dev, main_table_name(0, 0))
    assert r.get(int(batch.keys[0])) == batch.value_of(0)


def test_writer_dataptr_writes_vlog_and_ships_offsets():
    sent = []
    w, dev = make_writer(FMT_DATAPTR, sent, nranks=2, batch_bytes=64)
    batch = random_kv_batch(30, 16, rng=5)
    w.put_batch(batch)
    w.flush()
    assert w.local_storage_bytes == 30 * (16 + 4)  # values + length prefixes
    total_payload = sum(len(e.payload) for e in sent)
    assert total_payload == 30 * 16  # key + offset


def test_writer_rejects_wrong_value_width():
    w, _ = make_writer(FMT_BASE, [])
    with pytest.raises(ValueError):
        w.put_batch(random_kv_batch(5, 99, rng=6))


def test_receiver_routes_by_format():
    dev = StorageDevice()
    recv = ReceiverState(1, 4, FMT_FILTERKV, dev, value_bytes=16, capacity_hint=100)
    keys = np.arange(10, dtype="<u8")
    recv.deliver(Envelope(src=3, dest=1, payload=keys.tobytes(), nrecords=10))
    assert recv.records_received == 10
    recv.finish()
    assert 3 in recv.aux.candidate_ranks(5)


def test_receiver_rejects_misrouted_envelope():
    recv = ReceiverState(1, 4, FMT_BASE, StorageDevice(), value_bytes=16)
    with pytest.raises(ValueError):
        recv.deliver(Envelope(src=0, dest=2, payload=b"", nrecords=0))


def test_receiver_base_persists_sstable():
    dev = StorageDevice()
    recv = ReceiverState(0, 2, FMT_BASE, dev, value_bytes=4)
    payload = np.zeros((3, 12), dtype=np.uint8)
    payload[:, :8] = np.asarray([7, 5, 9], dtype="<u8").view(np.uint8).reshape(3, 8)
    payload[:, 8:] = np.arange(12, dtype=np.uint8).reshape(3, 4)
    recv.deliver(Envelope(src=1, dest=0, payload=payload.tobytes(), nrecords=3))
    stats = recv.finish()
    assert stats.nentries == 3
    r = SSTableReader(dev, main_table_name(0, 0))
    assert r.get(5) == bytes(payload[1, 8:])


def test_empty_flush_is_safe():
    sent = []
    w, _ = make_writer(FMT_BASE, sent)
    w.flush()
    w.flush()
    assert sent == []
