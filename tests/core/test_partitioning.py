"""Unit tests for the hash partitioner."""

import numpy as np
import pytest

from repro.core.partitioning import HashPartitioner


def test_deterministic_and_in_range():
    p = HashPartitioner(13)
    keys = np.arange(10_000, dtype=np.uint64)
    d1 = p.partition_of(keys)
    d2 = p.partition_of(keys)
    assert np.array_equal(d1, d2)
    assert d1.min() >= 0 and d1.max() < 13


def test_scalar_matches_vector():
    p = HashPartitioner(64)
    keys = np.arange(100, dtype=np.uint64)
    vec = p.partition_of(keys)
    assert all(p.partition_of_one(int(k)) == vec[i] for i, k in enumerate(keys))


def test_load_balance():
    """Online partitioning must load-balance (§I)."""
    p = HashPartitioner(16)
    keys = np.random.default_rng(1).integers(0, 2**63, size=160_000, dtype=np.uint64)
    counts = np.bincount(p.partition_of(keys), minlength=16)
    assert counts.max() / counts.min() < 1.1


def test_split_partitions_everything_exactly_once():
    p = HashPartitioner(7)
    keys = np.random.default_rng(2).integers(0, 2**63, size=5000, dtype=np.uint64)
    groups = p.split(keys)
    assert len(groups) == 7
    all_idx = np.concatenate(groups)
    assert sorted(all_idx) == list(range(5000))
    for dest, idx in enumerate(groups):
        assert np.all(p.partition_of(keys[idx]) == dest)


def test_split_empty():
    p = HashPartitioner(3)
    groups = p.split(np.zeros(0, dtype=np.uint64))
    assert [g.size for g in groups] == [0, 0, 0]


def test_different_seeds_differ():
    keys = np.arange(1000, dtype=np.uint64)
    a = HashPartitioner(8, seed=1).partition_of(keys)
    b = HashPartitioner(8, seed=2).partition_of(keys)
    assert not np.array_equal(a, b)


def test_single_partition():
    p = HashPartitioner(1)
    assert np.all(p.partition_of(np.arange(10, dtype=np.uint64)) == 0)


def test_invalid_nparts():
    with pytest.raises(ValueError):
        HashPartitioner(0)


def test_equality_and_repr():
    assert HashPartitioner(4, seed=1) == HashPartitioner(4, seed=1)
    assert HashPartitioner(4, seed=1) != HashPartitioner(4, seed=2)
    assert "nparts=4" in repr(HashPartitioner(4))
