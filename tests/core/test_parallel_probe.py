"""Tests for parallel candidate probing in the FilterKV read path."""

import numpy as np

from repro.cluster import SimCluster
from repro.core import FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.reader import QueryEngine


def _dataset(nranks=8, records=4000):
    cluster = SimCluster(
        nranks=nranks,
        fmt=FMT_FILTERKV,
        value_bytes=8,
        records_hint=nranks * records,
        seed=31,
    )
    batches = [random_kv_batch(records, 8, np.random.default_rng(60 + r)) for r in range(nranks)]
    for rank, b in enumerate(batches):
        cluster.put(rank, b)
    cluster.finish_epoch()
    return cluster, batches


def _parallel_engine(cluster):
    e = cluster.query_engine()
    return QueryEngine(
        device=e.device,
        fmt=e.fmt,
        nranks=e.nranks,
        partitioner=e.partitioner,
        aux_tables=e.aux_tables,
        epoch=e.epoch,
        parallel_probe=True,
    )


def test_same_answers():
    cluster, batches = _dataset()
    seq = cluster.query_engine()
    par = _parallel_engine(cluster)
    for i in range(0, 4000, 401):
        key = int(batches[3].keys[i])
        vs, _ = seq.get(key)
        vp, _ = par.get(key)
        assert vs == vp == batches[3].value_of(i)


def test_parallel_latency_never_worse():
    cluster, batches = _dataset()
    seq = cluster.query_engine()
    par = _parallel_engine(cluster)
    keys = [int(batches[r % 8].keys[r * 13]) for r in range(60)]
    total_seq = sum(seq.get(k)[1].latency for k in keys)
    total_par = sum(par.get(k)[1].latency for k in keys)
    assert total_par <= total_seq + 1e-12


def test_parallel_helps_multi_candidate_queries():
    """For queries with ≥2 candidates, parallel probing must strictly cut
    latency (probes overlap) while reads/bytes stay identical."""
    cluster, batches = _dataset()
    seq = cluster.query_engine()
    par = _parallel_engine(cluster)
    improved = 0
    for r in range(8):
        for i in range(0, 4000, 97):
            key = int(batches[r].keys[i])
            _, ss = seq.get(key)
            if ss.partitions_searched < 2:
                continue
            _, pp = par.get(key)
            # Parallel probes everything, so reads can exceed sequential's
            # early-exit count — but latency must drop.
            assert pp.latency < ss.latency
            improved += 1
            if improved >= 5:
                return
    assert improved > 0, "workload produced no multi-candidate queries"


def test_absent_key_parallel():
    cluster, _ = _dataset()
    par = _parallel_engine(cluster)
    value, qs = par.get(0xDEAD0BAD)
    assert value is None and not qs.found
