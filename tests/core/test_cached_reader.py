"""Tests for the warm-cache query engine."""

import numpy as np
import pytest

from repro.cluster import SimCluster
from repro.core import FMT_BASE, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.reader import CachedQueryEngine


def _dataset(fmt, nranks=6, records=1500):
    cluster = SimCluster(
        nranks=nranks, fmt=fmt, value_bytes=24, records_hint=nranks * records, seed=9
    )
    batches = [random_kv_batch(records, 24, np.random.default_rng(50 + r)) for r in range(nranks)]
    for rank, b in enumerate(batches):
        cluster.put(rank, b)
    cluster.finish_epoch()
    return cluster, batches


def _cached(cluster):
    cold = cluster.query_engine()
    return CachedQueryEngine(
        device=cold.device,
        fmt=cold.fmt,
        nranks=cold.nranks,
        partitioner=cold.partitioner,
        aux_tables=cold.aux_tables,
        epoch=cold.epoch,
    )


@pytest.mark.parametrize("fmt", [FMT_BASE, FMT_FILTERKV], ids=lambda f: f.name)
def test_same_answers_as_cold_engine(fmt):
    cluster, batches = _dataset(fmt)
    cold = cluster.query_engine()
    warm = _cached(cluster)
    for i in range(0, 1500, 131):
        key = int(batches[2].keys[i])
        v_cold, _ = cold.get(key)
        v_warm, _ = warm.get(key)
        assert v_cold == v_warm == batches[2].value_of(i)


def test_second_query_to_same_partition_is_cheaper():
    cluster, batches = _dataset(FMT_BASE)
    warm = _cached(cluster)
    # Two keys owned by the same partition.
    owner = cluster.partitioner.partition_of(batches[0].keys)
    same = np.nonzero(owner == owner[0])[0]
    assert same.size >= 2
    _, first = warm.get(int(batches[0].keys[same[0]]))
    _, second = warm.get(int(batches[0].keys[same[1]]))
    assert second.reads < first.reads
    assert second.breakdown_reads.get("footer", 0) == 0  # table already open


def test_filterkv_aux_read_amortized():
    cluster, batches = _dataset(FMT_FILTERKV)
    warm = _cached(cluster)
    owner = cluster.partitioner.partition_of(batches[0].keys)
    same = np.nonzero(owner == owner[0])[0][:3]
    stats = [warm.get(int(batches[0].keys[i]))[1] for i in same]
    assert stats[0].breakdown_reads.get("aux") == 1
    assert all(s.breakdown_reads.get("aux", 0) == 0 for s in stats[1:])


def test_warm_total_cost_below_cold():
    cluster, batches = _dataset(FMT_FILTERKV)
    cold = cluster.query_engine()
    warm = _cached(cluster)
    keys = [int(batches[r % 6].keys[r * 37]) for r in range(30)]
    cold_reads = sum(cold.get(k)[1].reads for k in keys)
    warm_reads = sum(warm.get(k)[1].reads for k in keys)
    assert warm_reads < 0.6 * cold_reads
