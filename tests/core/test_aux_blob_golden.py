"""Golden blob-format regression tests for the sealed aux backends.

The aux blob (`aux_to_blob`) is a persistence contract: epochs sealed by
older code must reload after an upgrade, and compaction carries blobs
forward verbatim.  Each test pins the exact serialized bytes of a tiny
deterministic table — if an edit changes the format, these fail loudly
instead of silently orphaning persisted epochs.

Format v2 added the ``"v"`` header tag alongside the csf/rankxor
backends and the lossless xor payload.  v1 blobs carry no tag; the
loader must keep reading them, and must refuse anything newer than it
understands.
"""

import json
import struct

import numpy as np
import pytest

from repro.core.auxtable import (
    _BLOB_VERSION,
    aux_from_blob,
    aux_to_blob,
    make_aux_table,
)

NPARTS = 4
KEYS = np.asarray(
    [0x01, 0xDEADBEEFCAFEF00D, 0xFFFFFFFFFFFFFFFF, 0x1234, 0x77], dtype=np.uint64
)
RANKS = np.asarray([0, 3, 1, 2, 3], dtype=np.uint64)

# fmt: off
GOLDEN = {
    "csf": bytes.fromhex(
        "790000007b226261636b656e64223a2022637366222c2022666e6b657973223a"
        "20352c202266705f62697473223a20322c20226e6b657973223a20352c20226e"
        "7061727473223a20342c202273656564223a20392c20227365676d656e74223a"
        "2031312c202276223a20322c202276616c75655f62697473223a20327d000000"
        "000000005000000000000605fa00"
    ),
    "rankxor": bytes.fromhex(
        "9b0000007b226261636b656e64223a202272616e6b786f72222c202262616e6b"
        "73223a205b5b302c20392c20392c20315d2c205b312c2031302c20392c20315d"
        "2c205b322c2031312c20392c20315d2c205b332c2031322c20392c20325d5d2c"
        "2022626173655f73656564223a20392c202266705f62697473223a20382c2022"
        "6e6b657973223a20352c20226e7061727473223a20342c202276223a20327d00"
        "0000000000000000000000000000000000000000000000000069000000000000"
        "00000000000000000000000000000000005a0000000000000000000000000000"
        "0000000000000000000097000000000000000000000000000000000000000000"
        "0000000000009400002600"
    ),
    "xor": bytes.fromhex(
        "680000007b226261636b656e64223a2022786f72222c2022666e6b657973223a"
        "20352c202266705f62697473223a20382c20226e6b657973223a20352c20226e"
        "7061727473223a20342c202273656564223a20392c20227365676d656e74223a"
        "2031312c202276223a20327dea0000000000000000000000000000f000000000"
        "000000001f0000000048c30000"
    ),
}
# fmt: on


def _build(backend):
    t = make_aux_table(backend, NPARTS, capacity_hint=KEYS.size, seed=9)
    t.insert_many(KEYS, RANKS)
    return t


def _split(blob):
    (hdr_len,) = struct.unpack_from("<I", blob)
    header = json.loads(blob[4 : 4 + hdr_len])
    return header, blob[4 + hdr_len :]


@pytest.mark.parametrize("backend", sorted(GOLDEN))
def test_blob_bytes_pinned(backend):
    assert aux_to_blob(_build(backend)) == GOLDEN[backend]


@pytest.mark.parametrize("backend", sorted(GOLDEN))
def test_golden_blob_reloads(backend):
    t = aux_from_blob(GOLDEN[backend])
    assert t.backend == backend
    assert len(t) == KEYS.size
    for k, r in zip(KEYS, RANKS):
        assert int(r) in t.candidate_ranks(int(k))
    assert aux_to_blob(t) == GOLDEN[backend]


@pytest.mark.parametrize("backend", sorted(GOLDEN))
def test_blob_carries_version_tag(backend):
    header, _ = _split(GOLDEN[backend])
    assert header["v"] == _BLOB_VERSION == 2


def _retag(blob, version):
    """Rewrite a blob's header with a different (or absent) version tag."""
    header, payload = _split(blob)
    if version is None:
        header.pop("v", None)
    else:
        header["v"] = version
    hdr = json.dumps(header, sort_keys=True).encode()
    return struct.pack("<I", len(hdr)) + hdr + payload


@pytest.mark.parametrize("backend", ["cuckoo", "bloom", "exact", "quotient"])
def test_legacy_v1_blob_still_loads(backend):
    # v1 blobs (pre-version-tag) exist in every epoch sealed before the
    # format bump; dropping the tag reproduces one exactly.
    blob_v1 = _retag(aux_to_blob(_build(backend)), None)
    t = aux_from_blob(blob_v1)
    assert t.backend == backend
    for k, r in zip(KEYS, RANKS):
        assert int(r) in t.candidate_ranks(int(k))


def test_future_version_rejected():
    blob_v3 = _retag(aux_to_blob(_build("cuckoo")), _BLOB_VERSION + 1)
    with pytest.raises(ValueError, match="newer than supported"):
        aux_from_blob(blob_v3)


def test_truncated_blob_rejected():
    blob = GOLDEN["csf"]
    with pytest.raises(ValueError):
        aux_from_blob(blob[:2])
    with pytest.raises(ValueError):
        aux_from_blob(blob[:20])
