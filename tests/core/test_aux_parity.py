"""Differential parity harness over every registered aux backend.

Every backend in `AUX_BACKENDS` — present and future — faces the same
oracle, parametrized straight off the registry: registering a backend is
one dict entry, and this file starts testing it with zero edits here.

The oracle checks, per backend:

* **no false negatives** — every inserted key's candidate set contains
  its true rank, on all three query surfaces;
* **three-surface equivalence** — `candidate_ranks`, `candidates_many`,
  and `candidate_counts` agree exactly, for present *and* absent keys;
* **blob round trip** — `aux_from_blob(aux_to_blob(t))` answers
  identical candidate sets, and re-serializing the reload reproduces the
  original blob bit-for-bit.
"""

import numpy as np
import pytest

from repro.core.auxtable import (
    AUX_BACKENDS,
    aux_from_blob,
    aux_to_blob,
    make_aux_table,
)

NPARTS = 16
# The quotient backend inserts scalar-at-a-time; keep its key count modest
# so the harness stays inside tier-1 time budget.
SCALE = {"quotient": 500}
DEFAULT_KEYS = 1500

BACKENDS = sorted(AUX_BACKENDS)


def _workload(backend, seed=11):
    n = SCALE.get(backend, DEFAULT_KEYS)
    rng = np.random.default_rng(seed)
    keys = rng.choice(np.arange(1, 50_000, dtype=np.uint64), size=n, replace=False)
    ranks = rng.integers(0, NPARTS, size=n, dtype=np.uint64)
    absent = np.setdiff1d(
        rng.integers(50_000, 90_000, size=n, dtype=np.uint64), keys
    )
    return keys, ranks, absent


def _build(backend, keys, ranks):
    t = make_aux_table(backend, NPARTS, capacity_hint=keys.size, seed=7)
    # Chunked inserts: backends must accumulate across calls, not only
    # accept one bulk load.
    for lo in range(0, keys.size, 400):
        t.insert_many(keys[lo : lo + 400], ranks[lo : lo + 400])
    t.finalize()
    return t


@pytest.fixture(scope="module", params=BACKENDS)
def built(request):
    backend = request.param
    keys, ranks, absent = _workload(backend)
    return backend, _build(backend, keys, ranks), keys, ranks, absent


def test_registry_covers_known_backends():
    # The harness is registry-driven; this pin just documents the floor.
    for name in ("exact", "bloom", "cuckoo", "quotient", "xor", "csf", "rankxor"):
        assert name in AUX_BACKENDS


def test_no_false_negatives(built):
    backend, t, keys, ranks, _ = built
    counts, flat = t.candidates_many(keys)
    assert (counts >= 1).all(), f"{backend}: key with empty candidate set"
    starts = np.concatenate([[0], np.cumsum(counts)])
    for i in range(keys.size):
        cands = flat[starts[i] : starts[i + 1]]
        assert int(ranks[i]) in cands, (
            f"{backend}: key {keys[i]} true rank {ranks[i]} not in {cands}"
        )


def test_three_surface_equivalence(built):
    backend, t, keys, _, absent = built
    probe = np.concatenate([keys, absent])
    counts, flat = t.candidates_many(probe)
    counts2 = t.candidate_counts(probe)
    np.testing.assert_array_equal(counts, counts2, err_msg=backend)
    starts = np.concatenate([[0], np.cumsum(counts)])
    for i, k in enumerate(probe):
        scalar = np.asarray(t.candidate_ranks(int(k)), dtype=np.int64)
        bulk = np.asarray(flat[starts[i] : starts[i + 1]], dtype=np.int64)
        np.testing.assert_array_equal(np.sort(scalar), np.sort(bulk), err_msg=backend)


def test_candidates_sorted_distinct(built):
    backend, t, keys, _, _ = built
    for k in keys[:50]:
        cands = np.asarray(t.candidate_ranks(int(k)))
        assert (np.diff(cands) > 0).all(), f"{backend}: candidates not sorted-distinct"
        assert (cands >= 0).all() and (cands < NPARTS).all(), backend


def test_blob_round_trip_bit_equality(built):
    backend, t, keys, _, absent = built
    blob = aux_to_blob(t)
    reloaded = aux_from_blob(blob)
    assert reloaded.backend == backend
    assert reloaded.nparts == t.nparts
    assert len(reloaded) == len(t)
    assert reloaded.size_bytes == t.size_bytes
    probe = np.concatenate([keys, absent])
    c1, f1 = t.candidates_many(probe)
    c2, f2 = reloaded.candidates_many(probe)
    np.testing.assert_array_equal(c1, c2, err_msg=backend)
    np.testing.assert_array_equal(f1, f2, err_msg=backend)
    # The reload is not merely equivalent — it re-serializes to the very
    # same bytes, so compaction can carry blobs forward verbatim.
    assert aux_to_blob(reloaded) == blob, f"{backend}: blob not bit-stable"


def test_empty_table_round_trip():
    for backend in BACKENDS:
        t = make_aux_table(backend, NPARTS, capacity_hint=1, seed=3)
        t.finalize()
        reloaded = aux_from_blob(aux_to_blob(t))
        assert len(reloaded) == 0, backend
        assert aux_to_blob(reloaded) == aux_to_blob(t), backend


def test_single_key_round_trip():
    for backend in BACKENDS:
        t = make_aux_table(backend, NPARTS, capacity_hint=1, seed=3)
        t.insert_many(np.asarray([12345], dtype=np.uint64), 7)
        t.finalize()
        assert 7 in t.candidate_ranks(12345), backend
        reloaded = aux_from_blob(aux_to_blob(t))
        assert 7 in reloaded.candidate_ranks(12345), backend
