"""Unit tests for the KV batch model."""

import numpy as np
import pytest

from repro.core.kv import KEY_BYTES, KVBatch, random_kv_batch


def test_random_batch_shapes():
    b = random_kv_batch(100, 56, rng=1)
    assert len(b) == 100
    assert b.value_bytes == 56
    assert b.record_bytes == KEY_BYTES + 56 == 64
    assert b.total_bytes == 6400


def test_reproducible_with_seed():
    a = random_kv_batch(50, 8, rng=7)
    b = random_kv_batch(50, 8, rng=7)
    assert np.array_equal(a.keys, b.keys)
    assert np.array_equal(a.values, b.values)


def test_value_of_roundtrip():
    b = random_kv_batch(10, 16, rng=2)
    assert b.value_of(3) == b.values[3].tobytes()
    assert len(b.value_of(0)) == 16


def test_select_by_mask_and_index():
    b = random_kv_batch(20, 4, rng=3)
    m = b.keys % np.uint64(2) == 0
    sub = b.select(m)
    assert len(sub) == int(m.sum())
    sub2 = b.select(np.asarray([1, 5, 7]))
    assert np.array_equal(sub2.keys, b.keys[[1, 5, 7]])


def test_concat():
    a = random_kv_batch(5, 8, rng=1)
    b = random_kv_batch(7, 8, rng=2)
    c = KVBatch.concat([a, b])
    assert len(c) == 12
    assert np.array_equal(c.keys[:5], a.keys)


def test_concat_rejects_mixed_widths():
    with pytest.raises(ValueError):
        KVBatch.concat([random_kv_batch(2, 8), random_kv_batch(2, 16)])
    with pytest.raises(ValueError):
        KVBatch.concat([])


def test_shape_validation():
    with pytest.raises(ValueError):
        KVBatch(np.zeros(3, dtype=np.uint64), np.zeros((2, 4), dtype=np.uint8))
    with pytest.raises(ValueError):
        KVBatch(np.zeros(3, dtype=np.uint64), np.zeros(3, dtype=np.uint8))


def test_zero_width_values_allowed():
    b = random_kv_batch(4, 0, rng=1)
    assert b.record_bytes == KEY_BYTES
    assert b.value_of(0) == b""


def test_negative_sizes_rejected():
    with pytest.raises(ValueError):
        random_kv_batch(-1, 8)
    with pytest.raises(ValueError):
        random_kv_batch(1, -8)
