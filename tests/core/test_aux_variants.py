"""Tests for the xor aux backend and alternate FilterKV aux variants."""

import dataclasses

import numpy as np
import pytest

from repro.cluster import SimCluster
from repro.core.auxtable import XorAuxTable, make_aux_table
from repro.core.formats import FMT_FILTERKV
from repro.core.kv import random_kv_batch


def _workload(n=4000, nparts=64, seed=1):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 2**63, size=n, dtype=np.uint64),
        rng.integers(0, nparts, size=n, dtype=np.uint64),
    )


class TestXorAuxTable:
    def test_no_false_negatives(self):
        keys, ranks = _workload()
        t = XorAuxTable(64, fp_bits=8)
        t.insert_many(keys, ranks)
        for i in range(0, 4000, 97):
            assert int(ranks[i]) in t.candidate_ranks(int(keys[i]))

    def test_space_beats_pointers_by_far(self):
        keys, ranks = _workload()
        t = XorAuxTable(64, fp_bits=8)
        t.insert_many(keys, ranks)
        assert t.bytes_per_key < 1.5  # ~1.23 bytes at 8-bit fingerprints
        assert len(t.to_bytes()) == t.size_bytes

    def test_amplification_small(self):
        keys, ranks = _workload(nparts=64, seed=2)
        t = XorAuxTable(64, fp_bits=8)
        t.insert_many(keys, ranks)
        amp = t.candidate_counts(keys[:200]).mean()
        # 1 true + 63 × 2^-8 ≈ 1.25 expected candidates.
        assert amp == pytest.approx(1.25, abs=0.3)

    def test_static_semantics(self):
        keys, ranks = _workload(n=100)
        t = XorAuxTable(64)
        t.insert_many(keys, ranks)
        t.finalize()
        with pytest.raises(ValueError):
            t.insert_many(keys, ranks)

    def test_empty_finalize_legal(self):
        # Compaction can seal a partition that ended up keyless: an empty
        # table finalizes to an empty (zero-byte) index, not an error.
        t = XorAuxTable(8)
        t.finalize()
        assert len(t) == 0 and t.size_bytes == 0
        assert t.candidate_ranks(123).size == 0

    def test_factory(self):
        t = make_aux_table("xor", nparts=16, fp_bits=12)
        assert isinstance(t, XorAuxTable)


@pytest.mark.parametrize("backend", ["bloom", "xor"])
def test_filterkv_variant_roundtrips_in_cluster(backend):
    """FilterKV with alternative aux backends: full write+query path."""
    fmt = dataclasses.replace(FMT_FILTERKV, aux_backend=backend)
    cluster = SimCluster(nranks=6, fmt=fmt, value_bytes=24, records_hint=6 * 1200, seed=13)
    batches = [random_kv_batch(1200, 24, np.random.default_rng(40 + r)) for r in range(6)]
    for rank, b in enumerate(batches):
        cluster.put(rank, b)
    cluster.finish_epoch()
    engine = cluster.query_engine()
    for i in (0, 600, 1199):
        value, qs = engine.get(int(batches[4].keys[i]))
        assert qs.found and value == batches[4].value_of(i)
