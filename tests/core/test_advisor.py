"""Tests for the format advisor."""

import pytest

from repro.cluster.machines import NARWHAL, TRINITY_KNL
from repro.core.advisor import recommend_format


def test_large_job_small_kv_wants_filterkv():
    """The paper's sweet spot: many processes, tiny records, slow network."""
    advice = recommend_format(
        NARWHAL, nprocs=640, kv_bytes=64, data_per_proc=960e6, residual_fraction=0.5
    )
    assert advice.recommended == "filterkv"
    assert advice.write_slowdowns["filterkv"] < advice.write_slowdowns["dataptr"]


def test_read_heavy_workload_shifts_away_from_filterkv():
    """With reads dominating, FilterKV's amplification costs points."""
    kw = dict(nprocs=64, kv_bytes=192, data_per_proc=960e6, residual_fraction=0.75)
    write_only = recommend_format(NARWHAL, read_weight=0.0, **kw)
    read_heavy = recommend_format(NARWHAL, read_weight=1.0, **kw)
    assert write_only.scores["filterkv"] < write_only.scores["dataptr"]
    # Ordering flips (or at least tightens) once reads matter.
    gap_before = write_only.scores["dataptr"] - write_only.scores["filterkv"]
    gap_after = read_heavy.scores["dataptr"] - read_heavy.scores["filterkv"]
    assert gap_after < gap_before


def test_storage_bound_job_keeps_base_competitive():
    """Low storage bandwidth: base writes the least data (Fig. 10a left)."""
    advice = recommend_format(
        TRINITY_KNL.with_storage_bandwidth(11e9 / 64),
        nprocs=4096,
        kv_bytes=64,
        data_per_proc=488e6,
    )
    assert advice.write_slowdowns["base"] < advice.write_slowdowns["dataptr"]


def test_scores_are_consistent():
    advice = recommend_format(NARWHAL, nprocs=128, kv_bytes=64, data_per_proc=1e8)
    assert advice.recommended == min(advice.scores, key=advice.scores.get)
    assert set(advice.scores) == {"base", "dataptr", "filterkv"}
    text = advice.explain()
    assert "recommended format" in text and advice.recommended in text


def test_read_weight_validated():
    with pytest.raises(ValueError):
        recommend_format(NARWHAL, 64, 64, 1e8, read_weight=2.0)
