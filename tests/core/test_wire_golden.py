"""Golden wire-format regression tests.

The three payload encodings (pipeline module docstring) are a stable
contract: readers recover persisted epochs written by older code, and the
fault-injection harness interprets offsets inside these records.  Each
test pins the exact bytes with hand-written hex constants — if an edit
changes the wire format, these fail loudly instead of silently breaking
cross-version compatibility.

* base:      ``key u64 LE ‖ value[value_bytes]``  per record
* dataptr:   ``key u64 LE ‖ vlog offset u64 LE``  per record
* filterkv:  ``key u64 LE``                        per record
"""

import numpy as np

from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import KVBatch
from repro.core.partitioning import HashPartitioner
from repro.core.pipeline import ReceiverState, WriterState, main_table_name
from repro.storage.blockio import StorageDevice
from repro.storage.log import DataPointer, ValueLog
from repro.storage.sstable import SSTableReader

KEYS = [0x0000000000000001, 0xDEADBEEFCAFEF00D, 0xFFFFFFFFFFFFFFFF]
VALUES = [b"\x10\x11\x12\x13", b"\x20\x21\x22\x23", b"\x30\x31\x32\x33"]

# fmt: off
GOLDEN_BASE = bytes.fromhex(
    "0100000000000000" "10111213"
    "0df0fecaefbeadde" "20212223"
    "ffffffffffffffff" "30313233"
)
# ValueLog records are ``u32 len ‖ value``: 4-byte values land at 0, 8, 16.
GOLDEN_DATAPTR = bytes.fromhex(
    "0100000000000000" "0000000000000000"
    "0df0fecaefbeadde" "0800000000000000"
    "ffffffffffffffff" "1000000000000000"
)
GOLDEN_FILTERKV = bytes.fromhex(
    "0100000000000000"
    "0df0fecaefbeadde"
    "ffffffffffffffff"
)
# fmt: on


def _batch():
    return KVBatch(
        np.asarray(KEYS, dtype=np.uint64),
        np.frombuffer(b"".join(VALUES), dtype=np.uint8).reshape(3, 4),
    )


def _encode_with_writer(fmt):
    """Run a single-destination writer and capture its shipped envelopes."""
    sent = []
    writer = WriterState(
        rank=0,
        fmt=fmt,
        partitioner=HashPartitioner(1),
        device=StorageDevice(),
        value_bytes=4,
        send=sent.append,
    )
    writer.put_batch(_batch())
    writer.flush()
    assert len(sent) == 1 and sent[0].nrecords == 3
    return writer, sent[0]


def _receiver(fmt):
    return ReceiverState(
        rank=0, nranks=1, fmt=fmt, device=StorageDevice(), value_bytes=4
    )


def test_base_payload_matches_golden_bytes():
    _, env = _encode_with_writer(FMT_BASE)
    assert env.payload == GOLDEN_BASE


def test_dataptr_payload_matches_golden_bytes():
    _, env = _encode_with_writer(FMT_DATAPTR)
    assert env.payload == GOLDEN_DATAPTR


def test_filterkv_payload_matches_golden_bytes():
    _, env = _encode_with_writer(FMT_FILTERKV)
    assert env.payload == GOLDEN_FILTERKV


def test_base_golden_bytes_decode_round_trip():
    recv = _receiver(FMT_BASE)
    _, env = _encode_with_writer(FMT_BASE)
    recv.deliver(env)
    recv.finish()
    reader = SSTableReader(recv.device, main_table_name(0, 0))
    assert dict(reader.scan()) == dict(zip(KEYS, VALUES))


def test_dataptr_golden_bytes_decode_to_working_pointers():
    recv = _receiver(FMT_DATAPTR)
    writer, env = _encode_with_writer(FMT_DATAPTR)
    recv.deliver(env)
    recv.finish()
    reader = SSTableReader(recv.device, main_table_name(0, 0))
    vlog = ValueLog.open(writer.device, 0)
    for key, value in zip(KEYS, VALUES):
        ptr = DataPointer.unpack(reader.get(key))
        assert ptr.rank == 0
        # Pointers decoded from the wire bytes dereference into the
        # writer's value log and recover the original payload.
        assert vlog.read(ptr) == value


def test_filterkv_golden_bytes_decode_into_aux_table():
    recv = _receiver(FMT_FILTERKV)
    _, env = _encode_with_writer(FMT_FILTERKV)
    recv.deliver(env)
    for key in KEYS:
        assert 0 in recv.aux.candidate_ranks(key)
