"""Tests for the multi-epoch store (cross-timestep queries)."""

import numpy as np
import pytest

from repro.apps.vpic import VPICSimulation
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.multiepoch import MultiEpochStore
from repro.storage.manifest import Manifest


def _batches(nranks, n, seed):
    return [random_kv_batch(n, 56, np.random.default_rng(seed * 100 + r)) for r in range(nranks)]


def test_write_and_query_single_epoch():
    store = MultiEpochStore(nranks=4, fmt=FMT_FILTERKV)
    batches = _batches(4, 500, seed=1)
    stats = store.write_epoch(batches)
    assert stats.records == 2000
    value, qs = store.get(int(batches[2].keys[7]), epoch=0)
    assert qs.found and value == batches[2].value_of(7)


@pytest.mark.parametrize("fmt", [FMT_BASE, FMT_DATAPTR, FMT_FILTERKV], ids=lambda f: f.name)
def test_trajectory_across_epochs(fmt):
    sim = VPICSimulation(nranks=4, particles_per_rank=400, drift=0.25, seed=2)
    store = MultiEpochStore(nranks=4, fmt=fmt)
    for _ in range(3):
        sim.step(2)
        store.write_epoch(sim.dump())
    target = int(sim.ids[11])
    traj = store.trajectory(target)
    assert [e for e, _, _ in traj] == [0, 1, 2]
    assert all(qs.found for _, _, qs in traj)
    assert len({v for _, v, _ in traj}) == 3  # the particle moved


def test_manifest_tracks_epochs():
    store = MultiEpochStore(nranks=4, fmt=FMT_FILTERKV)
    store.write_epoch(_batches(4, 200, seed=3))
    store.write_epoch(_batches(4, 300, seed=4))
    assert store.epochs == [0, 1]
    assert store.manifest.total_records == 2000
    # Reload from the device: same content.
    m = Manifest.load(store.device)
    assert m.epoch_ids == [0, 1]
    assert m.epochs[0].records == 800
    assert all(f.startswith(("part.000.", "aux.000.")) for f in m.epochs[0].files)


def test_epoch_files_are_disjoint_namespaces():
    store = MultiEpochStore(nranks=4, fmt=FMT_FILTERKV)
    b = _batches(4, 200, seed=5)
    store.write_epoch(b)
    store.write_epoch(b)
    # Same key queried in both epochs resolves independently.
    key = int(b[0].keys[0])
    v0, _ = store.get(key, 0)
    v1, _ = store.get(key, 1)
    assert v0 == v1 == b[0].value_of(0)


def test_wrong_batch_count_rejected():
    store = MultiEpochStore(nranks=4)
    with pytest.raises(ValueError):
        store.write_epoch(_batches(3, 10, seed=6))


def test_unknown_epoch_rejected():
    store = MultiEpochStore(nranks=4)
    with pytest.raises(KeyError):
        store.get(1, epoch=0)


def test_describe_mentions_epochs():
    store = MultiEpochStore(nranks=4, fmt=FMT_FILTERKV)
    store.write_epoch(_batches(4, 100, seed=7))
    out = store.describe()
    assert "epoch 0" in out and "filterkv" in out


def test_dataptr_value_logs_shared_across_epochs():
    """Value-log offsets stay valid when epochs append to the same logs."""
    store = MultiEpochStore(nranks=4, fmt=FMT_DATAPTR)
    b0 = _batches(4, 300, seed=8)
    b1 = _batches(4, 300, seed=9)
    store.write_epoch(b0)
    store.write_epoch(b1)
    v0, qs0 = store.get(int(b0[1].keys[5]), 0)
    v1, qs1 = store.get(int(b1[1].keys[5]), 1)
    assert v0 == b0[1].value_of(5)
    assert v1 == b1[1].value_of(5)
    assert qs0.breakdown_reads.get("vlog") == 1
