"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "FilterKV" in out and "CLUSTER 2019" in out


def test_machines(capsys):
    main(["machines"])
    out = capsys.readouterr().out
    assert "narwhal" in out and "trinity-knl" in out


def test_table1(capsys):
    main(["table1"])
    out = capsys.readouterr().out
    assert "Trinity" in out and "b2" in out


def test_compare(capsys):
    main(["compare", "--ranks", "4", "--records", "500", "--value-bytes", "24"])
    out = capsys.readouterr().out
    assert "filterkv" in out and "dataptr" in out and "base" in out
    assert "net B/rec" in out


def test_advise(capsys):
    main(["advise", "--machine", "narwhal", "--procs", "256"])
    out = capsys.readouterr().out
    assert "recommended format" in out


def test_advise_unknown_machine():
    with pytest.raises(SystemExit):
        main(["advise", "--machine", "bluegene"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_compare_metrics_out(tmp_path, capsys):
    import json

    out = tmp_path / "m.json"
    main(
        [
            "compare", "--ranks", "4", "--records", "400",
            "--queries", "32", "--metrics-out", str(out),
        ]
    )
    stdout = capsys.readouterr().out
    assert "filterkv" in stdout  # the human table is unchanged
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.metrics/v1"
    names = {m["name"] for m in doc["metrics"]}
    # one JSON document spans every instrumented layer
    assert {
        "pipeline.wire_bytes",
        "aux.probes",
        "aux.false_candidates",
        "storage.bytes_written",
        "reader.read_amplification",
    } <= names
    wire = {
        m["labels"]["format"]: 0.0 for m in doc["metrics"] if m["name"] == "pipeline.wire_bytes"
    }
    for m in doc["metrics"]:
        if m["name"] == "pipeline.wire_bytes":
            wire[m["labels"]["format"]] += m["value"]
    assert wire["filterkv"] == 8 * 4 * 400
    assert wire["dataptr"] == 16 * 4 * 400


def test_metrics_command_stdout(capsys):
    import json

    main(["metrics", "--format", "filterkv", "--ranks", "4", "--records", "300", "--queries", "16"])
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.metrics/v1"
    assert all(m["labels"]["format"] == "filterkv" for m in doc["metrics"])


def test_metrics_command_jsonl_file(tmp_path, capsys):
    import json

    out = tmp_path / "m.jsonl"
    main(
        [
            "metrics", "--format", "base", "--ranks", "4", "--records", "200",
            "--queries", "0", "--jsonl", "--out", str(out),
        ]
    )
    assert str(out) in capsys.readouterr().out
    lines = out.read_text().splitlines()
    assert lines and all(json.loads(ln)["labels"]["format"] == "base" for ln in lines)


def test_loadgen_command(capsys):
    main(
        [
            "loadgen", "--format", "filterkv", "--ranks", "4", "--records", "200",
            "--requests", "300", "--concurrency", "8",
        ]
    )
    out = capsys.readouterr().out
    assert "filterkv" in out and "qps" in out and "neg skips" in out
    assert "0/300" in out  # zero incorrect responses


def test_loadgen_command_json_out(tmp_path, capsys):
    import json

    path = tmp_path / "load.json"
    main(
        [
            "loadgen", "--format", "base", "--ranks", "4", "--records", "150",
            "--requests", "200", "--distribution", "uniform", "--json-out", str(path),
        ]
    )
    assert str(path) in capsys.readouterr().out
    doc = json.loads(path.read_text())
    assert doc[0]["format"] == "base"
    assert doc[0]["report"]["requests"] == 200
    assert doc[0]["report"]["incorrect"] == 0
    assert doc[0]["service"]["requests"]["ok"] == 200


def test_serve_parser_accepts_options():
    args = build_parser().parse_args(
        ["serve", "--ranks", "4", "--records", "100", "--port", "9999"]
    )
    assert args.command == "serve" and args.port == 9999 and args.fmt == "filterkv"


def test_loadgen_command_with_tracing(tmp_path, capsys):
    import json

    trace_path = tmp_path / "traces.jsonl"
    chrome_path = tmp_path / "chrome.json"
    main(
        [
            "loadgen", "--format", "filterkv", "--ranks", "4", "--records", "150",
            "--requests", "200", "--trace-sample", "0.2",
            "--trace-out", str(trace_path), "--chrome-trace-out", str(chrome_path),
        ]
    )
    out = capsys.readouterr().out
    assert "p95 ms" in out and "traces ->" in out
    from repro.obs import load_trace_jsonl

    spans = load_trace_jsonl(trace_path.read_text())
    assert spans, "trace export produced no spans"
    names = {s.name for s in spans}
    assert "client.get" in names and "serve.get" in names
    doc = json.loads(chrome_path.read_text())
    assert doc["traceEvents"] and doc["metadata"]["schema"] == "repro.trace/v1"


def test_top_command_renders_live_dashboard():
    # Drive the dashboard's frame renderer with the real verb payloads:
    # serve over TCP, answer queries, fetch stats_live/stats/traces, and
    # render exactly what one `repro top` refresh prints.
    import argparse as _ap
    import asyncio

    from repro.cli import _build_served_store
    from repro.obs import TraceCollector
    from repro.serve import QueryService, ServeServer, TCPClient

    store_args = _ap.Namespace(fmt="filterkv", ranks=4, records=100, epochs=1,
                               value_bytes=24, seed=0)
    store, keys, _ = _build_served_store(store_args)

    async def dashboard_flow():
        service = QueryService(store, tracer=TraceCollector(sample_rate=1.0))
        async with ServeServer(service) as server:
            async with TCPClient(server.host, server.port) as client:
                for k in keys[:20]:
                    await client.get(int(k))
                live = await client.stats_live()
                stats = await client.stats()
                traces = await client.traces(1)
        from repro.cli import _render_top_frame

        return _render_top_frame(live, stats, traces, f"{server.host}:{server.port}")

    frame = asyncio.run(dashboard_flow())
    assert "repro top — filterkv" in frame
    assert "qps" in frame and "latency" in frame and "caches" in frame
    assert "serve.get" in frame  # the rendered span tree


def test_top_parser_defaults():
    args = build_parser().parse_args(["top", "--port", "1234"])
    assert args.command == "top" and args.interval == 2.0 and args.iterations == 0
