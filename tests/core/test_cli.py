"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "FilterKV" in out and "CLUSTER 2019" in out


def test_machines(capsys):
    main(["machines"])
    out = capsys.readouterr().out
    assert "narwhal" in out and "trinity-knl" in out


def test_table1(capsys):
    main(["table1"])
    out = capsys.readouterr().out
    assert "Trinity" in out and "b2" in out


def test_compare(capsys):
    main(["compare", "--ranks", "4", "--records", "500", "--value-bytes", "24"])
    out = capsys.readouterr().out
    assert "filterkv" in out and "dataptr" in out and "base" in out
    assert "net B/rec" in out


def test_advise(capsys):
    main(["advise", "--machine", "narwhal", "--procs", "256"])
    out = capsys.readouterr().out
    assert "recommended format" in out


def test_advise_unknown_machine():
    with pytest.raises(SystemExit):
        main(["advise", "--machine", "bluegene"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_compare_metrics_out(tmp_path, capsys):
    import json

    out = tmp_path / "m.json"
    main(
        [
            "compare", "--ranks", "4", "--records", "400",
            "--queries", "32", "--metrics-out", str(out),
        ]
    )
    stdout = capsys.readouterr().out
    assert "filterkv" in stdout  # the human table is unchanged
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.metrics/v1"
    names = {m["name"] for m in doc["metrics"]}
    # one JSON document spans every instrumented layer
    assert {
        "pipeline.wire_bytes",
        "aux.probes",
        "aux.false_candidates",
        "storage.bytes_written",
        "reader.read_amplification",
    } <= names
    wire = {
        m["labels"]["format"]: 0.0 for m in doc["metrics"] if m["name"] == "pipeline.wire_bytes"
    }
    for m in doc["metrics"]:
        if m["name"] == "pipeline.wire_bytes":
            wire[m["labels"]["format"]] += m["value"]
    assert wire["filterkv"] == 8 * 4 * 400
    assert wire["dataptr"] == 16 * 4 * 400


def test_metrics_command_stdout(capsys):
    import json

    main(["metrics", "--format", "filterkv", "--ranks", "4", "--records", "300", "--queries", "16"])
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.metrics/v1"
    assert all(m["labels"]["format"] == "filterkv" for m in doc["metrics"])


def test_metrics_command_jsonl_file(tmp_path, capsys):
    import json

    out = tmp_path / "m.jsonl"
    main(
        [
            "metrics", "--format", "base", "--ranks", "4", "--records", "200",
            "--queries", "0", "--jsonl", "--out", str(out),
        ]
    )
    assert str(out) in capsys.readouterr().out
    lines = out.read_text().splitlines()
    assert lines and all(json.loads(ln)["labels"]["format"] == "base" for ln in lines)


def test_loadgen_command(capsys):
    main(
        [
            "loadgen", "--format", "filterkv", "--ranks", "4", "--records", "200",
            "--requests", "300", "--concurrency", "8",
        ]
    )
    out = capsys.readouterr().out
    assert "filterkv" in out and "qps" in out and "neg skips" in out
    assert "0/300" in out  # zero incorrect responses


def test_loadgen_command_json_out(tmp_path, capsys):
    import json

    path = tmp_path / "load.json"
    main(
        [
            "loadgen", "--format", "base", "--ranks", "4", "--records", "150",
            "--requests", "200", "--distribution", "uniform", "--json-out", str(path),
        ]
    )
    assert str(path) in capsys.readouterr().out
    doc = json.loads(path.read_text())
    assert doc[0]["format"] == "base"
    assert doc[0]["report"]["requests"] == 200
    assert doc[0]["report"]["incorrect"] == 0
    assert doc[0]["service"]["requests"]["ok"] == 200


def test_serve_parser_accepts_options():
    args = build_parser().parse_args(
        ["serve", "--ranks", "4", "--records", "100", "--port", "9999"]
    )
    assert args.command == "serve" and args.port == 9999 and args.fmt == "filterkv"
