"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "FilterKV" in out and "CLUSTER 2019" in out


def test_machines(capsys):
    main(["machines"])
    out = capsys.readouterr().out
    assert "narwhal" in out and "trinity-knl" in out


def test_table1(capsys):
    main(["table1"])
    out = capsys.readouterr().out
    assert "Trinity" in out and "b2" in out


def test_compare(capsys):
    main(["compare", "--ranks", "4", "--records", "500", "--value-bytes", "24"])
    out = capsys.readouterr().out
    assert "filterkv" in out and "dataptr" in out and "base" in out
    assert "net B/rec" in out


def test_advise(capsys):
    main(["advise", "--machine", "narwhal", "--procs", "256"])
    out = capsys.readouterr().out
    assert "recommended format" in out


def test_advise_unknown_machine():
    with pytest.raises(SystemExit):
        main(["advise", "--machine", "bluegene"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
