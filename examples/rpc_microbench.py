#!/usr/bin/env python3
"""RPC microbenchmark: why manycore CPUs hurt communication (paper §II).

Reproduces the structure of the paper's Fig. 1 on the discrete-event
model: round-trip RPC latency across message sizes for a multicore CPU
(Haswell) vs two manycore KNL parts, in polling and blocking modes, plus
the per-node all-to-all bandwidth plateau as processes per node grow.

Run:  python examples/rpc_microbench.py
"""

from repro.analysis.reporting import banner, render_table
from repro.net.flowmodel import pernode_alltoall_bandwidth
from repro.net.rpc import measure_rpc_latency
from repro.net.topology import ARIES_DRAGONFLY

SIZES = (8, 256, 1024, 4096, 16384, 65536)
CPUS = ("haswell", "trinity-knl", "theta-knl")


def main() -> None:
    print(banner("RPC latency & bandwidth: Haswell vs KNL"))
    for mode in ("polling", "blocking"):
        rows = []
        for size in SIZES:
            row = [size]
            for cpu in CPUS:
                row.append(round(measure_rpc_latency(cpu, "gni", size, mode).mean_us, 1))
            rows.append(row)
        print(
            render_table(
                ["msg bytes"] + list(CPUS),
                rows,
                title=f"\nRPC round-trip latency, {mode} mode (µs)",
            )
        )

    rows = []
    for ppn in (1, 4, 8, 16, 32, 64):
        row = [ppn]
        for cpu in ("haswell", "trinity-knl"):
            bw = pernode_alltoall_bandwidth(cpu, "gni", ARIES_DRAGONFLY, 32, ppn, 16384)
            row.append(round(bw.bandwidth / 1e6))
        rows.append(row)
    print(
        render_table(
            ["PPN", "haswell MB/s", "knl MB/s"],
            rows,
            title="\nper-node all-to-all bandwidth, 32 nodes, 16 KB messages",
        )
    )
    print(
        "\nReading: KNL latency ≈4× Haswell; its bandwidth plateau sits ~3×"
        "\nlower because the NIC progress path runs at single-thread speed."
    )


if __name__ == "__main__":
    main()
