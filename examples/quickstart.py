#!/usr/bin/env python3
"""Quickstart: partition one output burst with FilterKV and query it back.

Runs a 16-process simulated job where every process generates random
64-byte KV pairs, partitions them online with the FilterKV format (values
stay local, keys shuffle into compact cuckoo aux tables), and then answers
point queries through the auxiliary tables.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FMT_FILTERKV, SimCluster
from repro.analysis.reporting import banner, render_table
from repro.core.kv import random_kv_batch

NRANKS = 16
RECORDS_PER_RANK = 20_000
VALUE_BYTES = 56  # 64-byte KV pairs, the paper's staple workload


def main() -> None:
    print(banner("FilterKV quickstart"))
    cluster = SimCluster(
        nranks=NRANKS,
        fmt=FMT_FILTERKV,
        value_bytes=VALUE_BYTES,
        records_hint=NRANKS * RECORDS_PER_RANK,
        seed=42,
    )
    # Each rank generates its own burst of random 64-byte KV pairs.
    batches = [
        random_kv_batch(RECORDS_PER_RANK, VALUE_BYTES, np.random.default_rng(1000 + r))
        for r in range(NRANKS)
    ]
    for rank, batch in enumerate(batches):
        cluster.put(rank, batch)
    cluster.finish_epoch()
    stats = cluster.stats

    print(
        render_table(
            ["metric", "value"],
            [
                ["records partitioned", stats.records],
                ["RPC messages", stats.rpc_messages],
                ["bytes shuffled / record", round(stats.shuffle_bytes_per_record, 2)],
                ["bytes stored / record", round(stats.storage_bytes_per_record, 2)],
                ["aux index bytes / key", round(stats.aux_bytes / stats.records, 3)],
            ],
            title="\nwrite-phase accounting",
        )
    )

    # Query keys that rank 0 generated.
    batch = batches[0]
    engine = cluster.query_engine()
    rows = []
    for i in (0, 123, 4567):
        key = int(batch.keys[i])
        value, cost = engine.get(key)
        assert value == batch.value_of(i), "read your writes!"
        rows.append(
            [f"{key:#018x}", cost.partitions_searched, cost.reads, cost.bytes_read]
        )
    print(
        render_table(
            ["key", "partitions", "storage reads", "bytes fetched"],
            rows,
            title="\npoint queries (lossy aux tables → ≥1 candidate partitions)",
        )
    )
    print("\nOK: all queried values matched what was written.")


if __name__ == "__main__":
    main()
