#!/usr/bin/env python3
"""Run the FilterKV write pipeline as an (optionally real) MPI job.

Under ``mpiexec -n <P> python examples/mpi_partition.py`` each MPI process
owns one rank: it generates records, runs the real `WriterState`, ships
envelopes through mpi4py, and receives its partition's keys into a cuckoo
auxiliary table.  Without mpi4py the same pipelines run all ranks
in-process through the loopback transport — same results, one host.

Run:  python examples/mpi_partition.py                # loopback
      mpiexec -n 8 python examples/mpi_partition.py   # real MPI
"""

from repro.core.formats import FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.partitioning import HashPartitioner
from repro.core.pipeline import ReceiverState, WriterState
from repro.net.mpi_backend import HAVE_MPI, MpiTransport, make_transport
from repro.storage.blockio import StorageDevice

NRANKS_FALLBACK = 8
RECORDS_PER_RANK = 5_000
VALUE_BYTES = 56


def build_rank(rank: int, nranks: int, transport):
    device = StorageDevice()
    partitioner = HashPartitioner(nranks)
    receiver = ReceiverState(
        rank, nranks, FMT_FILTERKV, device, VALUE_BYTES, capacity_hint=RECORDS_PER_RANK * 2
    )
    writer = WriterState(
        rank, FMT_FILTERKV, partitioner, device, VALUE_BYTES, send=transport.send
    )
    return writer, receiver


def write_phase(writer, rank: int) -> None:
    writer.put_batch(random_kv_batch(RECORDS_PER_RANK, VALUE_BYTES, rng=1000 + rank))
    writer.finish()


def receive_phase(receiver, rank: int, transport) -> tuple[int, int]:
    for env in transport.poll(rank):
        receiver.deliver(env)
    receiver.finish()
    return receiver.records_received, receiver.aux.size_bytes


def main() -> None:
    transport = make_transport(NRANKS_FALLBACK)
    if HAVE_MPI and isinstance(transport, MpiTransport):
        rank, nranks = transport.rank, transport.size
        writer, receiver = build_rank(rank, nranks, transport)
        write_phase(writer, rank)
        transport.barrier()  # everyone's sends are in flight/delivered
        received, aux_bytes = receive_phase(receiver, rank, transport)
        print(f"[mpi rank {rank}] received {received} keys, aux table {aux_bytes} B")
        return
    # Loopback: SPMD emulation — run everyone's write phase, then
    # everyone's receive phase (the barrier MPI would provide).
    nranks = transport.size
    pairs = [build_rank(r, nranks, transport) for r in range(nranks)]
    for rank, (writer, _) in enumerate(pairs):
        write_phase(writer, rank)
    transport.barrier()
    total = 0
    for rank, (_, receiver) in enumerate(pairs):
        received, aux_bytes = receive_phase(receiver, rank, transport)
        total += received
        print(f"[loopback rank {rank}] received {received} keys, aux {aux_bytes} B")
    assert total == nranks * RECORDS_PER_RANK
    print(
        f"\nOK: {total} records partitioned across {nranks} in-process ranks "
        f"(install mpi4py + mpiexec for a real parallel job)."
    )


if __name__ == "__main__":
    main()
