#!/usr/bin/env python3
"""Compare the three partitioning formats on one workload (paper Fig. 3).

Runs Fmt-Base, Fmt-DataPtr, and Fmt-FilterKV over the same random KV burst
on a simulated cluster, then projects the measured per-record costs onto
the Narwhal machine model to show the end-to-end write slowdowns the paper
reports in Fig. 8.

Run:  python examples/format_comparison.py
"""

from repro.analysis.reporting import banner, percent, render_table
from repro.cluster import NARWHAL, SimCluster
from repro.core import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.costmodel import WriteRunConfig, model_write_phase

NRANKS = 16
RECORDS = 20_000
VALUE_BYTES = 56


def main() -> None:
    print(banner("Fmt-Base vs Fmt-DataPtr vs Fmt-FilterKV"))
    rows = []
    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        cluster = SimCluster(
            nranks=NRANKS,
            fmt=fmt,
            value_bytes=VALUE_BYTES,
            records_hint=NRANKS * RECORDS,
            seed=1,
        )
        st = cluster.run_epoch(RECORDS)
        # Project the same format onto a 256-process Narwhal job (Fig. 8's
        # midpoint) at 50 % residual bandwidth.
        model = model_write_phase(
            WriteRunConfig(
                fmt=fmt,
                machine=NARWHAL,
                nprocs=256,
                kv_bytes=8 + VALUE_BYTES,
                data_per_proc=960e6,
                residual_fraction=0.5,
            )
        )
        rows.append(
            [
                fmt.name,
                st.rpc_messages,
                round(st.shuffle_bytes_per_record, 2),
                round(st.storage_bytes_per_record, 2),
                percent(model.slowdown),
                model.bottleneck,
            ]
        )
    print(
        render_table(
            ["format", "msgs", "net B/rec", "disk B/rec", "slowdown@256p", "bottleneck"],
            rows,
            title="\nmeasured per-record costs → modeled Narwhal slowdown",
        )
    )
    print(
        "\nReading: FilterKV ships the fewest bytes (keys only) while keeping"
        "\nstorage near the raw data size — base floods the network, DataPtr"
        "\nfloods storage with 12-byte pointers."
    )


if __name__ == "__main__":
    main()
