#!/usr/bin/env python3
"""In-situ indexing of a VPIC-style particle simulation (paper §V-B).

A reduced magnetic-reconnection-style run: particles drift across rank
domains; every few steps each rank dumps the 64-byte state of the
particles it currently holds.  Each dump epoch is partitioned in-situ with
FilterKV, so afterwards a scientist can pull one particle's *trajectory* —
its state at every timestep — with a handful of reads per epoch instead of
scanning the whole dataset.

Run:  python examples/vpic_insitu.py
"""

from repro.apps.vpic import VPICSimulation
from repro.analysis.reporting import banner, render_table
from repro.cluster import SimCluster
from repro.core import FMT_FILTERKV

NRANKS = 8
PARTICLES_PER_RANK = 5_000
EPOCHS = 4
STEPS_PER_EPOCH = 3


def main() -> None:
    print(banner("VPIC + FilterKV in-situ indexing"))
    sim = VPICSimulation(NRANKS, PARTICLES_PER_RANK, drift=0.15, seed=7)
    target = int(sim.ids[1234])  # the particle our scientist cares about

    epochs = []  # (cluster, engine) per dump
    rows = []
    for epoch in range(EPOCHS):
        owners_before = sim.owner_of()
        sim.step(STEPS_PER_EPOCH)
        cluster = SimCluster(
            nranks=NRANKS,
            fmt=FMT_FILTERKV,
            value_bytes=56,
            records_hint=sim.nparticles,
            epoch=epoch,
            seed=epoch,
        )
        for rank, batch in enumerate(sim.dump()):
            cluster.put(rank, batch)
        cluster.finish_epoch()
        st = cluster.stats
        epochs.append(cluster)
        rows.append(
            [
                epoch,
                sim.timestep,
                f"{sim.migration_fraction(owners_before) * 100:.1f}%",
                st.rpc_messages,
                round(st.shuffle_bytes_per_record, 2),
                round(st.aux_bytes / st.records, 2),
            ]
        )
    print(
        render_table(
            ["epoch", "t", "migrated", "msgs", "net B/rec", "aux B/key"],
            rows,
            title="\nper-epoch in-situ partitioning",
        )
    )

    # Trajectory query: read the particle back from every epoch.
    rows = []
    for epoch, cluster in enumerate(epochs):
        value, cost = cluster.query_engine().get(target)
        assert cost.found, "particles never vanish"
        import numpy as np

        state = np.frombuffer(value, dtype="<f4")
        rows.append(
            [epoch, f"{state[0]:.3f}", f"{state[1]:+.3f}", cost.partitions_searched, cost.reads]
        )
    print(
        render_table(
            ["epoch", "x", "v", "partitions", "reads"],
            rows,
            title=f"\ntrajectory of particle {target:#x}",
        )
    )
    print("\nOK: trajectory recovered from every epoch.")


if __name__ == "__main__":
    main()
