#!/usr/bin/env python3
"""Full dataset workflow: advise → write epochs → inspect → query.

The downstream-user path through the library: pick a partitioning format
for your deployment with the advisor, stream several simulation dumps into
a `MultiEpochStore`, inspect the persisted dataset through its manifest,
and pull a particle's trajectory back out.

Run:  python examples/dataset_workflow.py
"""

from repro.analysis.reporting import banner, render_table
from repro.apps.vpic import VPICSimulation
from repro.cluster import NARWHAL
from repro.core import FORMATS, MultiEpochStore, recommend_format

NRANKS = 8
PARTICLES_PER_RANK = 4_000
EPOCHS = 3


def main() -> None:
    print(banner("dataset workflow: advise → write → inspect → query"))

    # 1. Ask the advisor which format fits this deployment.
    advice = recommend_format(
        NARWHAL,
        nprocs=256,
        kv_bytes=64,
        data_per_proc=960e6,
        residual_fraction=0.5,
        read_weight=0.1,
    )
    print("\n" + advice.explain())
    fmt = FORMATS[advice.recommended]

    # 2. Stream three simulation dumps into a multi-epoch store.
    sim = VPICSimulation(NRANKS, PARTICLES_PER_RANK, drift=0.2, seed=3)
    store = MultiEpochStore(nranks=NRANKS, fmt=fmt, value_bytes=56)
    for _ in range(EPOCHS):
        sim.step(3)
        stats = store.write_epoch(sim.dump())
        print(
            f"epoch {store.epochs[-1]}: {stats.records:,} records, "
            f"{stats.rpc_messages} RPCs, {stats.shuffle_bytes_per_record:.2f} net B/rec"
        )

    # 3. Inspect what landed on storage (via the manifest).
    print("\n" + store.describe())

    # 4. Trajectory query: one particle across every timestep.
    target = int(sim.ids[2025])
    rows = []
    for epoch, value, qs in store.trajectory(target):
        import numpy as np

        x = float(np.frombuffer(value, dtype="<f4")[0])
        rows.append([epoch, f"{x:.3f}", qs.partitions_searched, qs.reads])
    print(
        render_table(
            ["epoch", "x", "partitions", "reads"],
            rows,
            title=f"\ntrajectory of particle {target:#x} ({fmt.name} format)",
        )
    )
    print("\nOK.")


if __name__ == "__main__":
    main()
